#ifndef CEPSHED_ENGINE_RUN_STORE_H_
#define CEPSHED_ENGINE_RUN_STORE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/inline_bitmap.h"
#include "common/status.h"
#include "engine/run.h"

namespace cep {

/// Runtime tag of a gathered attribute value (HotCell / batch evaluation).
/// Only numeric values evaluate on the fast path; kOther (bool/string) and
/// anything else unexpected routes the edge to the generic interpreter.
inline constexpr uint8_t kHotNull = 0;
inline constexpr uint8_t kHotInt = 1;
inline constexpr uint8_t kHotDouble = 2;
inline constexpr uint8_t kHotOther = 3;

/// One gathered attribute value: tag plus both numeric representations so
/// int-int comparisons stay exact (Value semantics) while mixed comparisons
/// read the double without a branch.
struct HotCell {
  uint8_t tag = kHotNull;
  int64_t i = 0;
  double d = 0.0;
};

/// One run-side attribute the compiled predicates read: `attr_index` of the
/// first (or last) event bound to `var`. The batch compiler assigns each
/// distinct (var, attr, last) one column slot in the RunStore.
struct HotAttr {
  int var = 0;
  int attr_index = 0;
  bool last = false;  ///< head of the binding chain instead of the first event
};

/// \brief Flat struct-of-arrays view over the live run set R(t).
///
/// The store owns the run slots (RunPtr, arena-backed) and mirrors the hot
/// scalars every per-event probe reads — NFA state, window anchor, last-bound
/// timestamp, size — plus one HotCell column per compiled run-side attribute,
/// into parallel arrays. The decide phase then scans contiguous int32/int64
/// columns instead of chasing a pointer per run, and only dereferences a Run
/// for fallback evaluation and the serial merge. Live/victim masks are inline
/// bitmaps (common/inline_bitmap.h). See docs/DATA_LAYOUT.md.
///
/// Mutation discipline mirrors the engine's phases: columns are written only
/// on the serial path (Push / Refresh / Kill / Compact), and the evaluation
/// phase reads them concurrently without synchronization.
class RunStore {
 public:
  /// Installs the hot-attribute plan (owned by the caller, alive for the
  /// store's lifetime). Must be called before the first Push.
  void SetHotPlan(const std::vector<HotAttr>* plan) {
    plan_ = plan;
    hot_.assign(plan_ == nullptr ? 0 : plan_->size(), {});
  }

  size_t size() const { return slots_.size(); }
  bool empty() const { return slots_.empty(); }

  const std::vector<RunPtr>& slots() const { return slots_; }
  Run* at(size_t i) { return slots_[i].get(); }
  const Run* at(size_t i) const { return slots_[i].get(); }
  RunPtr& slot(size_t i) { return slots_[i]; }

  /// Appends `run` and gathers its columns. The live bit is set, the victim
  /// bit cleared.
  void Push(RunPtr run);

  /// Re-gathers row `i` after an in-place mutation (greedy Bind).
  void Refresh(size_t i);

  /// Releases slot `i` (state column left stale; the live mask is the truth
  /// until the next Compact).
  void Kill(size_t i);

  /// Marks row `i` in the victim mask and releases it (shedding).
  void MarkVictim(size_t i);

  /// Drops dead rows, compacting every column in place (stable order).
  /// Clears the victim mask: a victim bit only means something during the
  /// episode that set it.
  void Compact();

  /// Releases every run and empties all columns (checkpoint restore).
  void Clear();

  // --- column access (decide phase) ----------------------------------------
  const int32_t* states() const { return states_.data(); }
  const int64_t* start_ts() const { return start_ts_.data(); }
  const int64_t* last_ts() const { return last_ts_.data(); }
  const int32_t* sizes() const { return sizes_.data(); }
  size_t hot_width() const { return hot_.size(); }
  const HotCell* hot(size_t k) const { return hot_[k].data(); }

  const InlineBitmap& live_mask() const { return live_; }
  const InlineBitmap& victim_mask() const { return victims_; }

  /// Cross-checks columns against the runs they mirror: mask/slot agreement
  /// everywhere, and exact column equality for the first `deep_limit` live
  /// rows. Internal error on divergence.
  Status CheckConsistency(size_t deep_limit) const;

 private:
  void Gather(size_t i, const Run& run);

  const std::vector<HotAttr>* plan_ = nullptr;
  std::vector<RunPtr> slots_;
  std::vector<int32_t> states_;
  std::vector<int64_t> start_ts_;
  std::vector<int64_t> last_ts_;
  std::vector<int32_t> sizes_;
  std::vector<std::vector<HotCell>> hot_;  ///< [plan slot][row]
  InlineBitmap live_;
  InlineBitmap victims_;
};

/// Encodes `event`'s `attr_index` attribute (null when `event` is null or
/// the index is out of the event's range — the latter routes to kHotOther so
/// the generic interpreter keeps its exact behavior).
HotCell EncodeHotAttr(const Event* event, int attr_index);

/// Encodes a Value (literal operands, event-side gathering).
HotCell EncodeHotValue(const Value& value);

}  // namespace cep

#endif  // CEPSHED_ENGINE_RUN_STORE_H_
