#ifndef CEPSHED_ENGINE_OPTIONS_H_
#define CEPSHED_ENGINE_OPTIONS_H_

#include <cstddef>
#include <cstdint>

namespace cep {

/// SASE event selection strategies (which events a partial match may skip).
enum class SelectionStrategy : uint8_t {
  /// Branch on every applicable transition; the original run survives.
  /// Produces all matches and the exponential R(t) of the paper (default).
  kSkipTillAnyMatch,
  /// Greedily apply the first applicable transition in place; at most one
  /// match per started run.
  kSkipTillNextMatch,
  /// Like skip-till-next-match, but any relevant event that does not advance
  /// the run kills it.
  kStrictContiguity,
};

const char* SelectionStrategyName(SelectionStrategy strategy);

/// How the latency µ(t) driving overload detection is measured.
enum class LatencyMode : uint8_t {
  /// Deterministic proxy: edge evaluations × ns_per_op (reproducible).
  kVirtualCost,
  /// Real wall-clock per-event processing time.
  kWallClock,
  /// Deterministic single-server queueing simulation: µ(t) includes the
  /// time events spend queued behind earlier ones (the paper's detection
  /// latency). See QueueingLatencyMonitor.
  kQueueSimulation,
};

/// How many partial matches to drop per overload episode.
struct ShedAmountOptions {
  enum class Mode : uint8_t {
    kFixedFraction,  ///< the paper's setting: a fixed share of R(t)
    kAdaptive,       ///< share scaled by the overload ratio µ(t)/θ (§VI)
  };
  Mode mode = Mode::kFixedFraction;
  /// Fraction of R(t) shed per trigger (paper Table II uses 0.20).
  double fraction = 0.20;
  /// kAdaptive: shed fraction = min(max_fraction, fraction·(µ/θ - 1)·gain).
  double adaptive_gain = 1.0;
  double max_fraction = 0.8;
  size_t min_victims = 1;
};

/// \brief Engine configuration.
struct EngineOptions {
  SelectionStrategy selection = SelectionStrategy::kSkipTillAnyMatch;

  // Overload detection. Shedding triggers when µ(t) > latency_threshold_micros
  // (and a shedder is installed); a threshold <= 0 disables latency-triggered
  // shedding.
  LatencyMode latency_mode = LatencyMode::kVirtualCost;
  double latency_threshold_micros = 0.0;  ///< θ
  /// Calibrated cost of one edge evaluation for kVirtualCost /
  /// kQueueSimulation (nanoseconds).
  double virtual_ns_per_op = 100.0;
  /// kQueueSimulation: stream-time microseconds per arrival-clock
  /// microsecond (e.g. 1e6 replays one stream-hour in 3.6 arrival-seconds).
  double queue_time_compression = 1e6;
  /// Measurement interval for µ(t), in events.
  size_t latency_window_events = 256;
  /// Minimum number of events between consecutive shed triggers.
  size_t shed_cooldown_events = 256;

  ShedAmountOptions shed_amount;

  /// Hard cap on |R(t)|; exceeding it forces a shed regardless of latency
  /// (0 = unlimited). Safety valve and a deterministic overload trigger.
  size_t max_runs = 0;

  /// Accumulate matches in Engine::matches() (disable for pure-throughput
  /// benchmarks that use the callback instead).
  bool collect_matches = true;
};

}  // namespace cep

#endif  // CEPSHED_ENGINE_OPTIONS_H_
