#ifndef CEPSHED_ENGINE_OPTIONS_H_
#define CEPSHED_ENGINE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace cep {

/// SASE event selection strategies (which events a partial match may skip).
enum class SelectionStrategy : uint8_t {
  /// Branch on every applicable transition; the original run survives.
  /// Produces all matches and the exponential R(t) of the paper (default).
  kSkipTillAnyMatch,
  /// Greedily apply the first applicable transition in place; at most one
  /// match per started run.
  kSkipTillNextMatch,
  /// Like skip-till-next-match, but any relevant event that does not advance
  /// the run kills it.
  kStrictContiguity,
};

const char* SelectionStrategyName(SelectionStrategy strategy);

/// How the latency µ(t) driving overload detection is measured.
enum class LatencyMode : uint8_t {
  /// Deterministic proxy: edge evaluations × ns_per_op (reproducible).
  kVirtualCost,
  /// Real wall-clock per-event processing time.
  kWallClock,
  /// Deterministic single-server queueing simulation: µ(t) includes the
  /// time events spend queued behind earlier ones (the paper's detection
  /// latency). See QueueingLatencyMonitor.
  kQueueSimulation,
};

/// How many partial matches to drop per overload episode.
struct ShedAmountOptions {
  enum class Mode : uint8_t {
    kFixedFraction,  ///< the paper's setting: a fixed share of R(t)
    kAdaptive,       ///< share scaled by the overload ratio µ(t)/θ (§VI)
  };
  Mode mode = Mode::kFixedFraction;
  /// Fraction of R(t) shed per trigger (paper Table II uses 0.20).
  double fraction = 0.20;
  /// kAdaptive: shed fraction = min(max_fraction, fraction·(µ/θ - 1)·gain).
  double adaptive_gain = 1.0;
  double max_fraction = 0.8;
  size_t min_victims = 1;
};

/// Overload-degradation ladder levels (see engine/degradation.h).
enum class DegradationLevel : uint8_t {
  kHealthy = 0,
  kShedding = 1,
  kEmergency = 2,
  kBypass = 3,
};

const char* DegradationLevelName(DegradationLevel level);

/// \brief Configuration of the degradation ladder controller.
///
/// Entry thresholds are expressed as overload ratios µ(t)/θ so one set of
/// defaults works across workloads; the byte budget and error streak are
/// independent escalation signals (memory pressure and poisoned input must
/// escalate even when µ(t) looks healthy, e.g. under kWallClock noise).
struct DegradationOptions {
  bool enabled = false;

  /// Ladder entry thresholds as µ/θ ratios; must be increasing.
  double shedding_enter_ratio = 1.0;
  double emergency_enter_ratio = 2.0;
  double bypass_enter_ratio = 4.0;

  /// De-escalation requires the ratio below enter_ratio · hysteresis.
  double hysteresis = 0.7;
  /// Minimum events at a level before a downward step is considered.
  size_t cooldown_events = 512;

  /// Run-set byte budget (0 = unlimited). Exceeding it demands at least
  /// kEmergency; exceeding twice over demands kBypass.
  size_t run_bytes_budget = 0;

  /// Consecutive quarantined processing errors that demand kBypass
  /// (0 disables the signal). Requires the error budget to be enabled —
  /// without it the first error aborts the stream anyway.
  size_t error_streak_bypass = 8;

  /// Probability of dropping an arriving event while at kEmergency or
  /// above (input shedding in front of the automaton).
  double emergency_drop_probability = 0.5;
  /// Seed for the emergency input-shedding coin.
  uint64_t seed = 0x9e51;
};

/// \brief Poison tolerance for streaming ingestion.
///
/// When enabled, Engine::OfferEvent / ProcessStream quarantine events whose
/// processing fails (malformed payloads, type-flipped attributes,
/// out-of-order arrivals): the event is skipped, counted in
/// EngineMetrics::quarantined_events, and processing continues. Only a run
/// of `max_consecutive_errors` back-to-back failures aborts the stream —
/// that many in a row indicates systematic breakage, not stray poison.
/// Disabled (default), the first error propagates unchanged.
struct ErrorBudgetOptions {
  bool enabled = false;
  size_t max_consecutive_errors = 16;
};

/// \brief Parallel evaluation and run-allocation configuration.
///
/// The engine's evaluation phase (predicate checks over R(t)) can run on a
/// worker pool, sharded over the run set; the merge phase that applies
/// births, matches, and shedder bookkeeping stays serial and in run order,
/// so results are bit-identical for every (threads, shards) setting. See
/// docs/PARALLELISM.md for the determinism contract and tuning notes.
struct ParallelOptions {
  /// Total evaluation lanes for intra-engine run sharding (0 or 1 =
  /// serial). The engine owns a pool of this width unless one is shared in
  /// via Engine::SetThreadPool.
  size_t threads = 0;

  /// Run-set shards per event (0 = one shard per pool lane). Affects only
  /// load balance, never results.
  size_t shards = 0;

  /// Below this |R(t)| the engine evaluates serially even with a pool
  /// attached: pool dispatch costs more than it saves on small run sets.
  size_t min_parallel_runs = 256;

  /// Run-arena block size in runs (engine/run_arena.h); 0 disables pooling
  /// and allocates runs from the global heap.
  size_t arena_block_runs = 512;
};

/// \brief Checkpoint/restore configuration (src/ckpt/,
/// docs/CHECKPOINTING.md).
///
/// When a directory is set, the engine snapshots its full state every
/// `interval_events` events at the serial merge barrier (where state is
/// quiescent) and hands the encoded blob to a background writer, so the hot
/// path never blocks on the filesystem.
struct CheckpointOptions {
  /// Directory snapshots are written to; empty disables checkpointing.
  std::string directory;

  /// Events between automatic snapshots.
  size_t interval_events = 10000;

  /// Completed snapshots retained on disk, newest first (0 = keep all).
  size_t keep = 3;

  /// Write snapshots on the offering thread instead of the background
  /// writer. Slower, but every snapshot is durable before the next event is
  /// processed — used by tests and the crash-injection harness.
  bool synchronous = false;

  /// Snapshot file — or a checkpoint directory, in which case the newest
  /// valid snapshot wins — to restore from before processing starts; empty
  /// starts cold.
  std::string restore_from;

  /// Set by the driver when the input stream is wrapped in fault injection.
  /// The injected fault schedule is positional (one RNG drawn per delivered
  /// event), so resuming mid-stream would replay a different storm than the
  /// uninterrupted run saw — exactly-once resume is impossible and
  /// Validated() rejects the combination.
  bool fault_injection_active = false;

  bool enabled() const { return !directory.empty(); }
};

/// \brief Shadow-oracle sampling (engine/shadow.h).
///
/// A seeded subset of event-time slices ("spans") is mirrored through an
/// unshed ghost engine; comparing the primary's matches against the ghost's
/// within each sampled span yields a live estimate of recall under shedding.
struct ShadowOptions {
  /// Sample one span in `sample_every` (0 disables the shadow oracle,
  /// 1 mirrors every span). Selection is seeded and event-time based, so it
  /// is identical across threads/shards/batch configurations.
  size_t sample_every = 0;

  /// Span width in event-time units (0 = 2x the query window, so most
  /// matches that start in a span also end in it).
  int64_t span_width = 0;

  /// Seed for the span-selection hash.
  uint64_t seed = 0x5eedc0de;

  /// Ghost run-set cap: a sampled span whose unshed ghost exceeds this many
  /// runs is abandoned (counted in cep_shadow_spans_aborted; the primary is
  /// never affected).
  size_t max_ghost_runs = 1 << 20;

  /// Closed spans retained for the windowed recall estimate.
  size_t window_spans = 64;

  bool enabled() const { return sample_every > 0; }
};

/// \brief Completion-model calibration monitoring (obs/quality.h).
struct CalibrationOptions {
  bool enabled = false;
  /// Fixed-width prediction buckets over [0, 1].
  size_t num_buckets = 10;
};

/// \brief Multi-window θ burn-rate SLO tracking (obs/quality.h).
struct SloOptions {
  bool enabled = false;
  /// Tolerated fraction of events with µ(t) > θ (0.01 = 99% within bound).
  double budget_fraction = 0.01;
  /// Strictly increasing event-count windows; the largest bounds the ring.
  std::vector<size_t> windows = {1024, 8192, 65536};
};

/// \brief Shedding-quality observability: shadow oracle, calibration
/// monitor, and θ SLO tracking. All three are deterministic (serial-merge
/// fed, event-time driven) and checkpointed as engine state components.
struct QualityOptions {
  ShadowOptions shadow;
  CalibrationOptions calibration;
  SloOptions slo;

  bool any_enabled() const {
    return shadow.enabled() || calibration.enabled || slo.enabled;
  }
};

/// \brief Engine configuration.
struct EngineOptions {
  SelectionStrategy selection = SelectionStrategy::kSkipTillAnyMatch;

  // Overload detection. Shedding triggers when µ(t) > latency_threshold_micros
  // (and a shedder is installed); a threshold <= 0 disables latency-triggered
  // shedding.
  LatencyMode latency_mode = LatencyMode::kVirtualCost;
  double latency_threshold_micros = 0.0;  ///< θ
  /// Calibrated cost of one edge evaluation for kVirtualCost /
  /// kQueueSimulation (nanoseconds).
  double virtual_ns_per_op = 100.0;
  /// kQueueSimulation: stream-time microseconds per arrival-clock
  /// microsecond (e.g. 1e6 replays one stream-hour in 3.6 arrival-seconds).
  double queue_time_compression = 1e6;
  /// Measurement interval for µ(t), in events.
  size_t latency_window_events = 256;
  /// Minimum number of events between consecutive shed triggers.
  size_t shed_cooldown_events = 256;

  ShedAmountOptions shed_amount;

  /// Hard cap on |R(t)|; exceeding it forces a shed regardless of latency
  /// (0 = unlimited). Safety valve and a deterministic overload trigger.
  size_t max_runs = 0;

  /// Accumulate matches in Engine::matches() (disable for pure-throughput
  /// benchmarks that use the callback instead).
  bool collect_matches = true;

  /// Overload-degradation ladder (engine/degradation.h). When enabled, the
  /// ladder gates the defenses: latency-triggered state shedding only fires
  /// at kShedding or above, input shedding and the adaptive shed fraction
  /// engage at kEmergency, and kBypass suppresses new run creation.
  DegradationOptions degradation;

  /// Poison tolerance for OfferEvent / ProcessStream.
  ErrorBudgetOptions error_budget;

  /// Worker-pool evaluation and run-arena settings.
  ParallelOptions parallel;

  /// Events pulled per ProcessStream batch (1 = event-at-a-time; must be
  /// >= 1 — Validated() rejects 0).
  size_t batch_size = 1;

  /// Checkpoint/restore settings (disabled by default).
  CheckpointOptions checkpoint;

  /// Shedding-quality observability (disabled by default).
  QualityOptions quality;

  /// Returns a copy of these options after cross-field validation, or an
  /// InvalidArgument Status naming the first conflicting setting. Call this
  /// before constructing an Engine: individual fields have sane defaults,
  /// but combinations (a shard count above the run cap, restore-from under
  /// fault injection, a zero batch size) only a whole-struct check can
  /// reject.
  Result<EngineOptions> Validated() const;
};

}  // namespace cep

#endif  // CEPSHED_ENGINE_OPTIONS_H_
