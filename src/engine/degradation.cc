#include "engine/degradation.h"

#include <algorithm>

#include "ckpt/io.h"
#include "common/result.h"
#include "common/string_util.h"

namespace cep {

const char* DegradationLevelName(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kHealthy:
      return "healthy";
    case DegradationLevel::kShedding:
      return "shedding";
    case DegradationLevel::kEmergency:
      return "emergency";
    case DegradationLevel::kBypass:
      return "bypass";
  }
  return "?";
}

DegradationController::DegradationController(DegradationOptions options)
    : options_(options) {
  entries_[static_cast<size_t>(DegradationLevel::kHealthy)] = 1;
}

double DegradationController::EnterRatio(DegradationLevel level) const {
  switch (level) {
    case DegradationLevel::kShedding:
      return options_.shedding_enter_ratio;
    case DegradationLevel::kEmergency:
      return options_.emergency_enter_ratio;
    case DegradationLevel::kBypass:
      return options_.bypass_enter_ratio;
    case DegradationLevel::kHealthy:
      break;
  }
  return 0.0;
}

DegradationLevel DegradationController::TargetLevel(double overload_ratio,
                                                    size_t run_bytes,
                                                    size_t error_streak) const {
  DegradationLevel target = DegradationLevel::kHealthy;
  if (overload_ratio > options_.bypass_enter_ratio) {
    target = DegradationLevel::kBypass;
  } else if (overload_ratio > options_.emergency_enter_ratio) {
    target = DegradationLevel::kEmergency;
  } else if (overload_ratio > options_.shedding_enter_ratio) {
    target = DegradationLevel::kShedding;
  }
  if (options_.run_bytes_budget > 0 && run_bytes > options_.run_bytes_budget) {
    const DegradationLevel demanded =
        run_bytes > 2 * options_.run_bytes_budget ? DegradationLevel::kBypass
                                                  : DegradationLevel::kEmergency;
    target = std::max(target, demanded);
  }
  if (options_.error_streak_bypass > 0 &&
      error_streak >= options_.error_streak_bypass) {
    target = DegradationLevel::kBypass;
  }
  return target;
}

DegradationLevel DegradationController::Update(double overload_ratio,
                                               size_t run_bytes,
                                               size_t error_streak) {
  const DegradationLevel target =
      TargetLevel(overload_ratio, run_bytes, error_streak);
  if (target > level_) {
    // Escalate immediately: a burst has to be met when it arrives, not after
    // a cooldown. Count every intermediate step so transition metrics
    // reflect the full climb.
    while (level_ < target) {
      level_ = static_cast<DegradationLevel>(static_cast<uint8_t>(level_) + 1);
      ++entries_[static_cast<size_t>(level_)];
      ++ups_;
    }
    events_at_level_ = 0;
    return level_;
  }
  ++events_at_level_;
  if (target < level_ && events_at_level_ >= options_.cooldown_events &&
      overload_ratio < EnterRatio(level_) * options_.hysteresis) {
    // Step down one level at a time; the cooldown restarts so a multi-level
    // recovery takes several quiet periods — deliberate conservatism.
    level_ = static_cast<DegradationLevel>(static_cast<uint8_t>(level_) - 1);
    ++downs_;
    events_at_level_ = 0;
  }
  return level_;
}

Status DegradationController::SerializeTo(ckpt::Sink& sink) const {
  sink.WriteU8(static_cast<uint8_t>(level_));
  sink.WriteU64(events_at_level_);
  sink.WriteU64(ups_);
  sink.WriteU64(downs_);
  for (const uint64_t entry : entries_) sink.WriteU64(entry);
  return Status::OK();
}

Status DegradationController::RestoreFrom(ckpt::Source& source) {
  CEP_ASSIGN_OR_RETURN(uint8_t level, source.ReadU8());
  if (level > static_cast<uint8_t>(DegradationLevel::kBypass)) {
    return Status::ParseError("degradation snapshot level out of range");
  }
  CEP_ASSIGN_OR_RETURN(uint64_t events_at_level, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(ups_, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(downs_, source.ReadU64());
  for (uint64_t& entry : entries_) {
    CEP_ASSIGN_OR_RETURN(entry, source.ReadU64());
  }
  level_ = static_cast<DegradationLevel>(level);
  events_at_level_ = static_cast<size_t>(events_at_level);
  return Status::OK();
}

std::string DegradationController::ToString() const {
  return StrFormat(
      "level=%s ups=%llu downs=%llu entries{shed=%llu emerg=%llu bypass=%llu}",
      DegradationLevelName(level_), static_cast<unsigned long long>(ups_),
      static_cast<unsigned long long>(downs_),
      static_cast<unsigned long long>(
          entries(DegradationLevel::kShedding)),
      static_cast<unsigned long long>(
          entries(DegradationLevel::kEmergency)),
      static_cast<unsigned long long>(entries(DegradationLevel::kBypass)));
}

}  // namespace cep
