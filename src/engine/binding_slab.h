#ifndef CEPSHED_ENGINE_BINDING_SLAB_H_
#define CEPSHED_ENGINE_BINDING_SLAB_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "event/event.h"

namespace cep {

class BindingCellPool;

/// \brief One element of a copy-on-write binding chain.
///
/// A run's per-variable binding is a singly linked chain of cells, newest
/// first. Extending a run appends one cell whose `prev` is the parent's head;
/// the parent chain is never mutated, so any number of derived runs share
/// their common prefix — the compact-encoding direction of the paper's [26],
/// without a `shared_ptr<vector>` (two allocations plus a full vector copy
/// per bind) behind every variable.
///
/// Cells are reference counted: `refs` counts direct owners (run binding
/// heads plus successor cells). Cells carry their owning pool so chains may
/// mix pooled cells (engine runs) and heap cells (standalone runs in tests)
/// and still release correctly.
struct BindingCell {
  EventPtr event;
  BindingCell* prev = nullptr;
  BindingCellPool* pool = nullptr;  ///< owning slab, or nullptr for the heap
  uint32_t refs = 1;
};

/// \brief Free-list slab allocator for BindingCell.
///
/// Binding cells are the engine's highest-churn small objects after run
/// slots: every bind allocates exactly one. The pool carves cells out of
/// block allocations and recycles released cells through an intrusive free
/// list, keeping the chains resident in a few contiguous slabs instead of
/// scattered across the heap. Not thread-safe: all binds happen on the
/// engine's serial merge path (docs/PARALLELISM.md).
class BindingCellPool {
 public:
  explicit BindingCellPool(size_t cells_per_block = 1024)
      : cells_per_block_(cells_per_block == 0 ? 1024 : cells_per_block) {}

  ~BindingCellPool() {
    assert(live_ == 0 && "BindingCellPool destroyed with live cells");
  }

  BindingCellPool(const BindingCellPool&) = delete;
  BindingCellPool& operator=(const BindingCellPool&) = delete;

  /// Constructs a cell in a pooled slot.
  BindingCell* New(EventPtr event, BindingCell* prev) {
    Slot* slot = AcquireSlot();
    BindingCell* cell = new (slot->storage) BindingCell;
    cell->event = std::move(event);
    cell->prev = prev;
    cell->pool = this;
    ++live_;
    if (live_ > peak_live_) peak_live_ = live_;
    return cell;
  }

  /// Destroys `cell` and recycles its slot. Internal: use ReleaseBindingChain.
  void Free(BindingCell* cell) noexcept {
    cell->~BindingCell();
    Slot* slot = reinterpret_cast<Slot*>(cell);
    slot->next = free_;
    free_ = slot;
    --live_;
  }

  /// Cells currently alive in this pool.
  size_t live() const { return live_; }

  /// Highest live() ever observed (obs: binding slab occupancy).
  size_t peak_live() const { return peak_live_; }

  /// Total slots reserved across all blocks.
  size_t capacity() const { return blocks_.size() * cells_per_block_; }

  /// Bytes reserved by the pool's blocks.
  size_t bytes_reserved() const { return capacity() * sizeof(Slot); }

  /// Returns all blocks to the heap. May only be called with no live cells.
  void Reset() {
    assert(live_ == 0 && "BindingCellPool::Reset with live cells");
    blocks_.clear();
    free_ = nullptr;
  }

 private:
  union Slot {
    Slot* next;
    alignas(BindingCell) unsigned char storage[sizeof(BindingCell)];
  };

  Slot* AcquireSlot() {
    if (free_ == nullptr) {
      blocks_.push_back(std::make_unique<Slot[]>(cells_per_block_));
      Slot* block = blocks_.back().get();
      for (size_t i = cells_per_block_; i > 0; --i) {
        block[i - 1].next = free_;
        free_ = &block[i - 1];
      }
    }
    Slot* slot = free_;
    free_ = slot->next;
    return slot;
  }

  size_t cells_per_block_;
  std::vector<std::unique_ptr<Slot[]>> blocks_;
  Slot* free_ = nullptr;
  size_t live_ = 0;
  size_t peak_live_ = 0;
};

/// Allocates a cell from `pool`, or from the heap when `pool` is null.
inline BindingCell* NewBindingCell(BindingCellPool* pool, EventPtr event,
                                   BindingCell* prev) {
  if (pool != nullptr) return pool->New(std::move(event), prev);
  BindingCell* cell = new BindingCell;
  cell->event = std::move(event);
  cell->prev = prev;
  return cell;
}

/// Adds one owner to `head` (a derived run now shares the chain).
inline void RetainBindingChain(BindingCell* head) {
  if (head != nullptr) ++head->refs;
}

/// Drops one owner from `head`, freeing every cell whose last owner left.
/// Iterative so arbitrarily long chains cannot overflow the stack.
inline void ReleaseBindingChain(BindingCell* head) noexcept {
  while (head != nullptr && --head->refs == 0) {
    BindingCell* prev = head->prev;
    if (head->pool != nullptr) {
      head->pool->Free(head);
    } else {
      delete head;
    }
    head = prev;
  }
}

}  // namespace cep

#endif  // CEPSHED_ENGINE_BINDING_SLAB_H_
