#ifndef CEPSHED_ENGINE_SHADOW_H_
#define CEPSHED_ENGINE_SHADOW_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/state_component.h"
#include "common/status.h"
#include "common/time.h"
#include "engine/options.h"
#include "event/event.h"
#include "nfa/nfa.h"
#include "obs/metrics.h"
#include "obs/quality.h"

namespace cep {

class Engine;

/// \brief Online recall estimation via a sampled, unshed ghost engine.
///
/// Event time is partitioned into fixed-width spans; a seeded hash selects
/// one span in `sample_every` for shadowing. While a sampled span is open,
/// every event the primary consumes is also fed to a ghost engine — a second
/// Engine over the same NFA with shedding, degradation, and checkpointing
/// disabled — so the ghost's matches inside the span are the unshed ground
/// truth. When the stream moves past the span, both match sets (fingerprint
/// multisets, restricted to matches fully contained in the span) are
/// compared: sum(min(primary, ghost)) over sum(ghost) across the retained
/// span window is a live recall estimate, with Wilson 95% bounds.
///
/// Determinism and non-interference contract:
///  - Span selection and bounds depend only on event timestamps and the
///    seed, never on threads/shards/batch, wall clock, or shedding activity,
///    so the oracle's state and exports are byte-identical across engine
///    parallelism configurations.
///  - The oracle is driven strictly after the primary finishes an event
///    (outside its latency measurement) and never mutates primary state: a
///    ghost failure or run-set blow-up poisons the current span (counted in
///    spans_aborted) and the primary proceeds untouched.
///  - A known bias: the ghost is flushed at span close, which resolves
///    trailing-negation (deferred-final) runs optimistically, so for queries
///    ending in a negated component the estimate can slightly undercount
///    ghost truth. The bench suite uses queries without trailing negation.
class ShadowOracle final : public ckpt::StateComponent {
 public:
  /// `primary_options` are the (validated) options of the owning engine;
  /// the ghost derives a serial, shed-free configuration from them that is
  /// independent of the primary's parallelism settings.
  ShadowOracle(NfaPtr nfa, const EngineOptions& primary_options);
  ~ShadowOracle() override;

  ShadowOracle(const ShadowOracle&) = delete;
  ShadowOracle& operator=(const ShadowOracle&) = delete;

  /// A primary match was emitted. Buffered until the event that produced it
  /// is known to have been consumed successfully (OnEventConsumed), so a
  /// quarantined event leaves no trace here.
  void NotePrimaryMatch(uint64_t fingerprint, Timestamp first_ts,
                        Timestamp last_ts);

  /// Drops matches buffered by a failed (quarantined) primary event.
  void DiscardPending();

  /// The primary consumed `event` successfully: advance the span state
  /// machine, attribute buffered primary matches, and mirror the event into
  /// the ghost when a sampled span is open. Never fails the primary.
  void OnEventConsumed(const EventPtr& event);

  /// Closes a still-open span (flushing the ghost) so end-of-stream matches
  /// are scored. Call after the primary's Flush; idempotent.
  void Finish();

  /// Windowed recall estimate over the retained closed spans.
  obs::WilsonInterval WindowedRecall() const;
  /// Lifetime recall estimate over every closed span.
  obs::WilsonInterval LifetimeRecall() const;

  uint64_t spans_sampled() const { return spans_sampled_; }
  uint64_t spans_completed() const { return spans_completed_; }
  uint64_t spans_aborted() const { return spans_aborted_; }
  uint64_t events_mirrored() const { return events_mirrored_; }
  uint64_t ghost_matches_total() const { return ghost_total_; }
  uint64_t matched_total() const { return matched_total_; }
  /// Primary matches inside sampled spans with no ghost counterpart — a
  /// correctness alarm (the unshed oracle should dominate the shed primary).
  uint64_t unexpected_total() const { return unexpected_total_; }
  int64_t span_width() const { return span_width_; }

  /// Mirrors the oracle's state into `registry` under `labels`.
  void Export(obs::Registry* registry, const obs::LabelSet& labels) const;

  /// JSON object fragment; schema documented in docs/OBSERVABILITY.md and
  /// checked by tools/validate_obs `quality`.
  std::string ToJson() const;

  // StateComponent: totals, span ring, and — when a span is open — the
  // in-flight fingerprint buffers plus a nested ghost snapshot.
  Status SerializeTo(ckpt::Sink& sink) const override;
  Status RestoreFrom(ckpt::Source& source) override;

 private:
  enum class SpanState : uint8_t { kIdle = 0, kActive = 1, kPoisoned = 2 };

  struct SpanStat {
    uint64_t ghost = 0;    ///< ghost matches in the span
    uint64_t matched = 0;  ///< multiset intersection with primary matches
    uint64_t extra = 0;    ///< primary matches absent from the ghost
  };

  bool SpanSampled(int64_t span_id) const;
  void OpenSpan(int64_t span_id);
  void CloseSpan();
  void PoisonSpan();
  /// Creates the ghost engine (cold) with the derived options.
  Status MakeGhost();
  void RecordClosedSpan(const SpanStat& stat);

  NfaPtr nfa_;
  ShadowOptions options_;
  EngineOptions ghost_options_;
  int64_t span_width_ = 1;

  /// Sentinel for "no span visited yet": distinct from every real span id so
  /// the stream's first span (id 0 for non-negative timestamps) is eligible.
  static constexpr int64_t kNoSpan = INT64_MIN;

  SpanState state_ = SpanState::kIdle;
  int64_t span_id_ = kNoSpan;  ///< open span, or last span visited when idle
  Timestamp span_start_ = 0;
  Timestamp span_end_ = 0;
  Timestamp watermark_ = INT64_MIN;  ///< max event ts seen (regression guard)

  std::unique_ptr<Engine> ghost_;
  std::vector<uint64_t> primary_fps_;  ///< primary matches in the open span
  std::vector<uint64_t> ghost_fps_;    ///< ghost matches in the open span
  /// Matches from the event currently in flight (attributed or discarded
  /// once the event's fate is known).
  std::vector<std::pair<uint64_t, std::pair<Timestamp, Timestamp>>> pending_;

  std::vector<SpanStat> ring_;  ///< last `window_spans` closed spans
  size_t ring_pos_ = 0;
  size_t ring_size_ = 0;

  uint64_t spans_sampled_ = 0;
  uint64_t spans_completed_ = 0;
  uint64_t spans_aborted_ = 0;
  uint64_t events_mirrored_ = 0;
  uint64_t ghost_total_ = 0;
  uint64_t matched_total_ = 0;
  uint64_t unexpected_total_ = 0;
};

}  // namespace cep

#endif  // CEPSHED_ENGINE_SHADOW_H_
