#include "engine/options.h"

#include "common/string_util.h"

namespace cep {

namespace {
Status Invalid(std::string msg) {
  return Status::InvalidArgument(std::move(msg));
}
}  // namespace

Result<EngineOptions> EngineOptions::Validated() const {
  if (batch_size == 0) {
    return Invalid("batch_size must be >= 1 (1 = event-at-a-time)");
  }
  if (latency_window_events == 0) {
    return Invalid("latency_window_events must be >= 1: µ(t) is a sliding "
                   "mean over at least one measurement");
  }
  if (latency_mode != LatencyMode::kWallClock && virtual_ns_per_op <= 0) {
    return Invalid("virtual_ns_per_op must be positive under kVirtualCost / "
                   "kQueueSimulation: it is the service time of one edge "
                   "evaluation");
  }
  if (latency_mode == LatencyMode::kQueueSimulation &&
      queue_time_compression <= 0) {
    return Invalid("queue_time_compression must be positive: it maps stream "
                   "time onto the arrival clock");
  }
  if (shed_amount.fraction <= 0 || shed_amount.fraction > 1) {
    return Invalid(StrFormat(
        "shed_amount.fraction must be in (0, 1], got %g: it is the share of "
        "R(t) dropped per trigger",
        shed_amount.fraction));
  }
  if (shed_amount.mode == ShedAmountOptions::Mode::kAdaptive &&
      (shed_amount.max_fraction <= 0 || shed_amount.max_fraction > 1)) {
    return Invalid(StrFormat(
        "shed_amount.max_fraction must be in (0, 1], got %g",
        shed_amount.max_fraction));
  }
  if (max_runs > 0 && parallel.shards > max_runs) {
    return Invalid(StrFormat(
        "parallel.shards (%llu) exceeds the run cap max_runs (%llu): every "
        "shard would hold less than one run",
        static_cast<unsigned long long>(parallel.shards),
        static_cast<unsigned long long>(max_runs)));
  }
  if (degradation.enabled) {
    if (!(degradation.shedding_enter_ratio < degradation.emergency_enter_ratio &&
          degradation.emergency_enter_ratio < degradation.bypass_enter_ratio)) {
      return Invalid(StrFormat(
          "degradation enter ratios must be strictly increasing "
          "(shedding %g < emergency %g < bypass %g)",
          degradation.shedding_enter_ratio, degradation.emergency_enter_ratio,
          degradation.bypass_enter_ratio));
    }
    if (degradation.hysteresis <= 0 || degradation.hysteresis > 1) {
      return Invalid(StrFormat(
          "degradation.hysteresis must be in (0, 1], got %g: de-escalation "
          "must require a ratio at or below the entry threshold",
          degradation.hysteresis));
    }
  }
  if (checkpoint.enabled() && checkpoint.interval_events == 0) {
    return Invalid("checkpoint.interval_events must be >= 1 when a checkpoint "
                   "directory is set");
  }
  if (quality.shadow.enabled()) {
    if (quality.shadow.span_width < 0) {
      return Invalid(StrFormat(
          "quality.shadow.span_width must be >= 0 (0 = derive from the query "
          "window), got %lld",
          static_cast<long long>(quality.shadow.span_width)));
    }
    if (quality.shadow.max_ghost_runs == 0) {
      return Invalid("quality.shadow.max_ghost_runs must be >= 1: the ghost "
                     "engine needs room for at least one run");
    }
    if (quality.shadow.window_spans == 0) {
      return Invalid("quality.shadow.window_spans must be >= 1: the recall "
                     "estimate needs at least one closed span");
    }
  }
  if (quality.calibration.enabled &&
      (quality.calibration.num_buckets == 0 ||
       quality.calibration.num_buckets > 1000)) {
    return Invalid(StrFormat(
        "quality.calibration.num_buckets must be in [1, 1000], got %llu",
        static_cast<unsigned long long>(quality.calibration.num_buckets)));
  }
  if (quality.slo.enabled) {
    if (quality.slo.budget_fraction <= 0 || quality.slo.budget_fraction > 1) {
      return Invalid(StrFormat(
          "quality.slo.budget_fraction must be in (0, 1], got %g",
          quality.slo.budget_fraction));
    }
    if (quality.slo.windows.empty()) {
      return Invalid("quality.slo.windows must name at least one window");
    }
    size_t prev = 0;
    for (size_t w : quality.slo.windows) {
      if (w <= prev) {
        return Invalid("quality.slo.windows must be strictly increasing "
                       "event counts >= 1");
      }
      prev = w;
    }
    if (quality.slo.windows.back() > (size_t{1} << 24)) {
      return Invalid(StrFormat(
          "quality.slo.windows.back() (%llu) exceeds the ring cap (2^24 "
          "events): the violation ring is kept in memory",
          static_cast<unsigned long long>(quality.slo.windows.back())));
    }
  }
  if (!checkpoint.restore_from.empty() && checkpoint.fault_injection_active) {
    return Invalid(
        "restore-from cannot be combined with fault injection: the injected "
        "fault schedule is positional, so a resumed run would see a "
        "different storm than the uninterrupted one — exactly-once replay "
        "is impossible");
  }
  return *this;
}

}  // namespace cep
