#include "engine/shadow.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "common/string_util.h"
#include "engine/engine.h"
#include "engine/match.h"

namespace cep {

namespace {

/// Floor division so spans tile negative timestamps without a seam at 0.
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b) != 0 && ((a < 0) != (b < 0))) --q;
  return q;
}

}  // namespace

ShadowOracle::ShadowOracle(NfaPtr nfa, const EngineOptions& primary_options)
    : nfa_(std::move(nfa)), options_(primary_options.quality.shadow) {
  if (options_.span_width > 0) {
    span_width_ = options_.span_width;
  } else {
    const Duration window = nfa_->window();
    span_width_ = window > 0 ? 2 * window : 1;
  }
  // The ghost configuration is derived only from fields that do not vary
  // with the primary's parallelism, so oracle state is byte-identical
  // across threads/shards/batch settings of the primary.
  ghost_options_.selection = primary_options.selection;
  ghost_options_.latency_mode = LatencyMode::kVirtualCost;
  ghost_options_.latency_threshold_micros = 0.0;
  ghost_options_.virtual_ns_per_op = primary_options.virtual_ns_per_op;
  ghost_options_.collect_matches = false;
  ring_.resize(options_.window_spans);
}

ShadowOracle::~ShadowOracle() = default;

bool ShadowOracle::SpanSampled(int64_t span_id) const {
  if (options_.sample_every <= 1) return true;
  return Mix64(options_.seed ^ static_cast<uint64_t>(span_id)) %
             options_.sample_every ==
         0;
}

Status ShadowOracle::MakeGhost() {
  CEP_ASSIGN_OR_RETURN(EngineOptions validated, ghost_options_.Validated());
  ghost_ = std::make_unique<Engine>(nfa_, std::move(validated));
  ghost_->SetMatchCallback([this](const Match& match) {
    if (match.first_ts >= span_start_ && match.last_ts <= span_end_) {
      ghost_fps_.push_back(match.fingerprint);
    }
  });
  return Status::OK();
}

void ShadowOracle::OpenSpan(int64_t span_id) {
  span_id_ = span_id;
  span_start_ = span_id * span_width_;
  span_end_ = span_start_ + span_width_ - 1;
  ++spans_sampled_;
  state_ = MakeGhost().ok() ? SpanState::kActive : SpanState::kPoisoned;
}

void ShadowOracle::PoisonSpan() {
  state_ = SpanState::kPoisoned;
  ghost_.reset();
  primary_fps_.clear();
  ghost_fps_.clear();
}

void ShadowOracle::RecordClosedSpan(const SpanStat& stat) {
  ring_[ring_pos_] = stat;
  ring_pos_ = (ring_pos_ + 1) % ring_.size();
  ring_size_ = std::min(ring_size_ + 1, ring_.size());
}

void ShadowOracle::CloseSpan() {
  if (state_ == SpanState::kActive && !ghost_->Flush().ok()) {
    state_ = SpanState::kPoisoned;
  }
  if (state_ == SpanState::kActive) {
    SpanStat stat;
    stat.ghost = ghost_fps_.size();
    std::unordered_map<uint64_t, uint64_t> counts;
    counts.reserve(ghost_fps_.size());
    for (uint64_t fp : ghost_fps_) ++counts[fp];
    for (uint64_t fp : primary_fps_) {
      auto it = counts.find(fp);
      if (it != counts.end() && it->second > 0) {
        --it->second;
        ++stat.matched;
      } else {
        ++stat.extra;
      }
    }
    RecordClosedSpan(stat);
    ++spans_completed_;
    ghost_total_ += stat.ghost;
    matched_total_ += stat.matched;
    unexpected_total_ += stat.extra;
  } else if (state_ == SpanState::kPoisoned) {
    ++spans_aborted_;
  }
  ghost_.reset();
  primary_fps_.clear();
  ghost_fps_.clear();
  state_ = SpanState::kIdle;
}

void ShadowOracle::NotePrimaryMatch(uint64_t fingerprint, Timestamp first_ts,
                                    Timestamp last_ts) {
  pending_.emplace_back(fingerprint, std::make_pair(first_ts, last_ts));
}

void ShadowOracle::DiscardPending() { pending_.clear(); }

void ShadowOracle::OnEventConsumed(const EventPtr& event) {
  const Timestamp ts = event->timestamp();
  if (ts < watermark_) {
    // Out-of-order input the primary chose to accept anyway; spans are
    // event-time monotone, so such events cannot be attributed.
    pending_.clear();
    return;
  }
  watermark_ = ts;
  const int64_t span = FloorDiv(ts, span_width_);
  if (state_ != SpanState::kIdle && span != span_id_) CloseSpan();
  if (state_ == SpanState::kIdle && span != span_id_ && SpanSampled(span)) {
    OpenSpan(span);
  }
  if (state_ != SpanState::kIdle) {
    for (const auto& m : pending_) {
      if (state_ == SpanState::kActive && m.second.first >= span_start_ &&
          m.second.second <= span_end_) {
        primary_fps_.push_back(m.first);
      }
    }
  }
  pending_.clear();
  if (state_ == SpanState::kActive) {
    if (!ghost_->ProcessEvent(event).ok()) {
      PoisonSpan();
      return;
    }
    ++events_mirrored_;
    if (ghost_->num_runs() > options_.max_ghost_runs) PoisonSpan();
  }
}

void ShadowOracle::Finish() {
  if (state_ != SpanState::kIdle) {
    // Primary flush-time emissions (deferred finals) belong to the open
    // span; attribute them before scoring so they mirror the ghost's own
    // flush inside CloseSpan.
    for (const auto& m : pending_) {
      if (state_ == SpanState::kActive && m.second.first >= span_start_ &&
          m.second.second <= span_end_) {
        primary_fps_.push_back(m.first);
      }
    }
    CloseSpan();
  }
  pending_.clear();
}

obs::WilsonInterval ShadowOracle::WindowedRecall() const {
  uint64_t matched = 0;
  uint64_t ghost = 0;
  for (size_t i = 0; i < ring_size_; ++i) {
    matched += ring_[i].matched;
    ghost += ring_[i].ghost;
  }
  return obs::WilsonScore(matched, ghost);
}

obs::WilsonInterval ShadowOracle::LifetimeRecall() const {
  return obs::WilsonScore(matched_total_, ghost_total_);
}

void ShadowOracle::Export(obs::Registry* registry,
                          const obs::LabelSet& labels) const {
  registry
      ->GetCounter("cep_shadow_spans_sampled_total",
                   "Event-time spans selected for shadowing", labels)
      ->Set(spans_sampled_);
  registry
      ->GetCounter("cep_shadow_spans_completed_total",
                   "Sampled spans scored against the ghost engine", labels)
      ->Set(spans_completed_);
  registry
      ->GetCounter("cep_shadow_spans_aborted_total",
                   "Sampled spans abandoned (ghost failure or run-set cap)",
                   labels)
      ->Set(spans_aborted_);
  registry
      ->GetCounter("cep_shadow_events_mirrored_total",
                   "Events fed to the unshed ghost engine", labels)
      ->Set(events_mirrored_);
  registry
      ->GetCounter("cep_shadow_ghost_matches_total",
                   "Ghost (unshed oracle) matches inside sampled spans",
                   labels)
      ->Set(ghost_total_);
  registry
      ->GetCounter("cep_shadow_matched_total",
                   "Primary matches confirmed by the ghost inside sampled "
                   "spans",
                   labels)
      ->Set(matched_total_);
  registry
      ->GetCounter("cep_shadow_unexpected_matches_total",
                   "Primary matches inside sampled spans with no ghost "
                   "counterpart (correctness alarm)",
                   labels)
      ->Set(unexpected_total_);
  const obs::WilsonInterval windowed = WindowedRecall();
  registry
      ->GetGauge("cep_shadow_recall_estimate",
                 "Estimated recall under shedding over the retained span "
                 "window",
                 labels)
      ->Set(windowed.center);
  registry
      ->GetGauge("cep_shadow_recall_lower",
                 "Wilson 95% lower bound of the windowed recall estimate",
                 labels)
      ->Set(windowed.lower);
  registry
      ->GetGauge("cep_shadow_recall_upper",
                 "Wilson 95% upper bound of the windowed recall estimate",
                 labels)
      ->Set(windowed.upper);
  registry
      ->GetGauge("cep_shadow_recall_lifetime",
                 "Estimated recall under shedding over every closed span",
                 labels)
      ->Set(LifetimeRecall().center);
}

std::string ShadowOracle::ToJson() const {
  const obs::WilsonInterval windowed = WindowedRecall();
  std::string out = "{";
  out += StrFormat("\"sample_every\":%llu",
                   static_cast<unsigned long long>(options_.sample_every));
  out += StrFormat(",\"span_width\":%lld",
                   static_cast<long long>(span_width_));
  out += StrFormat(",\"spans_sampled\":%llu",
                   static_cast<unsigned long long>(spans_sampled_));
  out += StrFormat(",\"spans_completed\":%llu",
                   static_cast<unsigned long long>(spans_completed_));
  out += StrFormat(",\"spans_aborted\":%llu",
                   static_cast<unsigned long long>(spans_aborted_));
  out += StrFormat(",\"events_mirrored\":%llu",
                   static_cast<unsigned long long>(events_mirrored_));
  out += StrFormat(",\"ghost_matches\":%llu",
                   static_cast<unsigned long long>(ghost_total_));
  out += StrFormat(",\"matched\":%llu",
                   static_cast<unsigned long long>(matched_total_));
  out += StrFormat(",\"unexpected\":%llu",
                   static_cast<unsigned long long>(unexpected_total_));
  out += ",\"recall_estimate\":" + obs::FormatMetricValue(windowed.center);
  out += ",\"recall_lower\":" + obs::FormatMetricValue(windowed.lower);
  out += ",\"recall_upper\":" + obs::FormatMetricValue(windowed.upper);
  out += ",\"recall_lifetime\":" +
         obs::FormatMetricValue(LifetimeRecall().center);
  out += "}";
  return out;
}

Status ShadowOracle::SerializeTo(ckpt::Sink& sink) const {
  sink.WriteU64(options_.sample_every);
  sink.WriteI64(span_width_);
  sink.WriteU64(options_.seed);
  sink.WriteU64(options_.max_ghost_runs);
  sink.WriteU64(options_.window_spans);
  sink.WriteU64(spans_sampled_);
  sink.WriteU64(spans_completed_);
  sink.WriteU64(spans_aborted_);
  sink.WriteU64(events_mirrored_);
  sink.WriteU64(ghost_total_);
  sink.WriteU64(matched_total_);
  sink.WriteU64(unexpected_total_);
  sink.WriteI64(watermark_);
  // Ring entries in logical oldest-to-newest order: the bytes are a pure
  // function of the retained stats, independent of the physical cursor.
  sink.WriteU64(ring_size_);
  const size_t cap = ring_.size();
  for (size_t i = 0; i < ring_size_; ++i) {
    const SpanStat& stat = ring_[(ring_pos_ + cap - ring_size_ + i) % cap];
    sink.WriteU64(stat.ghost);
    sink.WriteU64(stat.matched);
    sink.WriteU64(stat.extra);
  }
  sink.WriteU8(static_cast<uint8_t>(state_));
  // Serialized even when idle: it guards against re-opening (and therefore
  // double-counting) a span that was already closed before the checkpoint.
  sink.WriteI64(span_id_);
  if (state_ != SpanState::kIdle) {
    sink.WriteU64(primary_fps_.size());
    for (uint64_t fp : primary_fps_) sink.WriteU64(fp);
    sink.WriteU64(ghost_fps_.size());
    for (uint64_t fp : ghost_fps_) sink.WriteU64(fp);
  }
  if (state_ == SpanState::kActive) {
    // SerializeSnapshot drains the ghost's checkpoint pipeline (a no-op:
    // ghosts never checkpoint) — logically const for a quiescent engine.
    CEP_ASSIGN_OR_RETURN(
        const std::string blob,
        const_cast<Engine*>(ghost_.get())->SerializeSnapshot());
    sink.WriteString(blob);
  }
  return Status::OK();
}

Status ShadowOracle::RestoreFrom(ckpt::Source& source) {
  CEP_ASSIGN_OR_RETURN(const uint64_t sample_every, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(const int64_t span_width, source.ReadI64());
  CEP_ASSIGN_OR_RETURN(const uint64_t seed, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(const uint64_t max_ghost_runs, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(const uint64_t window_spans, source.ReadU64());
  if (sample_every != options_.sample_every || span_width != span_width_ ||
      seed != options_.seed || max_ghost_runs != options_.max_ghost_runs ||
      window_spans != options_.window_spans) {
    return Status::InvalidArgument(
        "shadow-oracle snapshot was taken under a different shadow "
        "configuration (sample_every/span_width/seed/max_ghost_runs/"
        "window_spans must match)");
  }
  CEP_ASSIGN_OR_RETURN(spans_sampled_, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(spans_completed_, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(spans_aborted_, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(events_mirrored_, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(ghost_total_, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(matched_total_, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(unexpected_total_, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(watermark_, source.ReadI64());
  CEP_ASSIGN_OR_RETURN(const uint64_t ring_size, source.ReadU64());
  if (ring_size > options_.window_spans) {
    return Status::DataLoss(StrFormat(
        "shadow snapshot ring holds %llu spans but window_spans is %llu",
        static_cast<unsigned long long>(ring_size),
        static_cast<unsigned long long>(options_.window_spans)));
  }
  ring_.assign(options_.window_spans, SpanStat{});
  ring_size_ = static_cast<size_t>(ring_size);
  ring_pos_ = ring_size_ % ring_.size();
  for (size_t i = 0; i < ring_size_; ++i) {
    CEP_ASSIGN_OR_RETURN(ring_[i].ghost, source.ReadU64());
    CEP_ASSIGN_OR_RETURN(ring_[i].matched, source.ReadU64());
    CEP_ASSIGN_OR_RETURN(ring_[i].extra, source.ReadU64());
  }
  CEP_ASSIGN_OR_RETURN(const uint8_t state, source.ReadU8());
  if (state > static_cast<uint8_t>(SpanState::kPoisoned)) {
    return Status::DataLoss("unknown shadow span state in snapshot");
  }
  state_ = static_cast<SpanState>(state);
  ghost_.reset();
  primary_fps_.clear();
  ghost_fps_.clear();
  pending_.clear();
  CEP_ASSIGN_OR_RETURN(span_id_, source.ReadI64());
  if (state_ != SpanState::kIdle) {
    span_start_ = span_id_ * span_width_;
    span_end_ = span_start_ + span_width_ - 1;
    CEP_ASSIGN_OR_RETURN(const uint64_t num_primary, source.ReadU64());
    primary_fps_.reserve(num_primary);
    for (uint64_t i = 0; i < num_primary; ++i) {
      CEP_ASSIGN_OR_RETURN(const uint64_t fp, source.ReadU64());
      primary_fps_.push_back(fp);
    }
    CEP_ASSIGN_OR_RETURN(const uint64_t num_ghost, source.ReadU64());
    ghost_fps_.reserve(num_ghost);
    for (uint64_t i = 0; i < num_ghost; ++i) {
      CEP_ASSIGN_OR_RETURN(const uint64_t fp, source.ReadU64());
      ghost_fps_.push_back(fp);
    }
  }
  if (state_ == SpanState::kActive) {
    CEP_ASSIGN_OR_RETURN(const std::string blob, source.ReadString());
    CEP_RETURN_NOT_OK(MakeGhost());
    CEP_RETURN_NOT_OK(ghost_->RestoreFromSnapshot(blob));
  }
  return Status::OK();
}

}  // namespace cep
