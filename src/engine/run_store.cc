#include "engine/run_store.h"

#include "common/string_util.h"

namespace cep {

HotCell EncodeHotValue(const Value& value) {
  HotCell cell;
  switch (value.type()) {
    case ValueType::kNull:
      cell.tag = kHotNull;
      break;
    case ValueType::kInt:
      cell.tag = kHotInt;
      cell.i = value.int_value();
      cell.d = static_cast<double>(value.int_value());
      break;
    case ValueType::kDouble:
      cell.tag = kHotDouble;
      cell.d = value.double_value();
      break;
    default:
      cell.tag = kHotOther;
      break;
  }
  return cell;
}

HotCell EncodeHotAttr(const Event* event, int attr_index) {
  if (event == nullptr) return HotCell{};
  if (attr_index < 0 ||
      static_cast<size_t>(attr_index) >= event->num_attributes()) {
    // Malformed/corrupted payload: let the generic interpreter decide.
    HotCell cell;
    cell.tag = kHotOther;
    return cell;
  }
  return EncodeHotValue(event->attribute(attr_index));
}

void RunStore::Gather(size_t i, const Run& run) {
  states_[i] = static_cast<int32_t>(run.state());
  start_ts_[i] = run.start_ts();
  last_ts_[i] = run.last_ts();
  sizes_[i] = run.size();
  if (plan_ == nullptr) return;
  for (size_t k = 0; k < plan_->size(); ++k) {
    const HotAttr& attr = (*plan_)[k];
    const Event* event =
        attr.last ? run.last_event(attr.var) : run.first_event(attr.var);
    hot_[k][i] = EncodeHotAttr(event, attr.attr_index);
  }
}

void RunStore::Push(RunPtr run) {
  const size_t i = slots_.size();
  slots_.push_back(std::move(run));
  states_.resize(i + 1);
  start_ts_.resize(i + 1);
  last_ts_.resize(i + 1);
  sizes_.resize(i + 1);
  for (auto& column : hot_) column.resize(i + 1);
  live_.Resize(i + 1);
  victims_.Resize(i + 1);
  live_.Set(i);
  victims_.Clear(i);
  Gather(i, *slots_[i]);
}

void RunStore::Refresh(size_t i) { Gather(i, *slots_[i]); }

void RunStore::Kill(size_t i) {
  slots_[i].reset();
  live_.Clear(i);
}

void RunStore::MarkVictim(size_t i) {
  victims_.Set(i);
  Kill(i);
}

void RunStore::Compact() {
  size_t out = 0;
  const size_t n = slots_.size();
  for (size_t i = 0; i < n; ++i) {
    if (slots_[i] == nullptr) continue;
    if (out != i) {
      slots_[out] = std::move(slots_[i]);
      states_[out] = states_[i];
      start_ts_[out] = start_ts_[i];
      last_ts_[out] = last_ts_[i];
      sizes_[out] = sizes_[i];
      for (auto& column : hot_) column[out] = column[i];
    }
    ++out;
  }
  slots_.resize(out);
  states_.resize(out);
  start_ts_.resize(out);
  last_ts_.resize(out);
  sizes_.resize(out);
  for (auto& column : hot_) column.resize(out);
  live_.Resize(out);
  victims_.Resize(out);
  // Every surviving row is live by construction; victim bits die with the
  // episode that set them.
  for (size_t i = 0; i < out; ++i) live_.Set(i);
  victims_.ClearAll();
}

void RunStore::Clear() {
  slots_.clear();
  states_.clear();
  start_ts_.clear();
  last_ts_.clear();
  sizes_.clear();
  for (auto& column : hot_) column.clear();
  live_.Resize(0);
  victims_.Resize(0);
}

Status RunStore::CheckConsistency(size_t deep_limit) const {
  const size_t n = slots_.size();
  if (states_.size() != n || start_ts_.size() != n || last_ts_.size() != n ||
      sizes_.size() != n || live_.bit_count() != n ||
      victims_.bit_count() != n) {
    return Status::Internal(StrFormat(
        "run store columns out of step: %zu slots, %zu states, %zu live bits",
        n, states_.size(), live_.bit_count()));
  }
  for (const auto& column : hot_) {
    if (column.size() != n) {
      return Status::Internal("run store hot column out of step");
    }
  }
  size_t checked = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool has_run = slots_[i] != nullptr;
    if (live_.Get(i) != has_run) {
      return Status::Internal(
          StrFormat("live mask disagrees with slot %zu", i));
    }
    if (!has_run || checked >= deep_limit) continue;
    ++checked;
    const Run& run = *slots_[i];
    if (states_[i] != run.state() || start_ts_[i] != run.start_ts() ||
        last_ts_[i] != run.last_ts() || sizes_[i] != run.size()) {
      return Status::Internal(StrFormat(
          "run store scalar column stale at row %zu (run#%llu)", i,
          static_cast<unsigned long long>(run.id())));
    }
    if (plan_ != nullptr) {
      for (size_t k = 0; k < plan_->size(); ++k) {
        const HotAttr& attr = (*plan_)[k];
        const Event* event = attr.last ? run.last_event(attr.var)
                                       : run.first_event(attr.var);
        const HotCell expect = EncodeHotAttr(event, attr.attr_index);
        const HotCell& got = hot_[k][i];
        const bool same =
            expect.tag == got.tag &&
            (expect.tag != kHotInt || expect.i == got.i) &&
            (expect.tag != kHotDouble ||
             (expect.d == got.d || (expect.d != expect.d && got.d != got.d)));
        if (!same) {
          return Status::Internal(StrFormat(
              "run store hot column %zu stale at row %zu (run#%llu)", k, i,
              static_cast<unsigned long long>(run.id())));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace cep
