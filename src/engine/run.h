#ifndef CEPSHED_ENGINE_RUN_H_
#define CEPSHED_ENGINE_RUN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/time.h"
#include "engine/binding_slab.h"
#include "event/event.h"
#include "nfa/nfa.h"
#include "query/expr.h"

namespace cep {

class Run;
class RunArena;

namespace ckpt {
class Sink;
class Source;
class EventTableBuilder;
class EventTable;
}  // namespace ckpt

/// Deleter for pooled runs: returns the slot to its arena, or falls back to
/// the global heap for runs allocated outside any arena (MakeRun).
struct RunDeleter {
  RunArena* arena = nullptr;
  void operator()(Run* run) const noexcept;
};

/// Owning handle to a Run, pooled (engine/run_arena.h) or heap-allocated.
using RunPtr = std::unique_ptr<Run, RunDeleter>;

/// \brief A partial match: one element of the engine's state set R(t).
///
/// A run records the NFA state it occupies and, per pattern variable, the
/// events bound so far. Under skip-till-any-match, transitions never mutate a
/// run — they produce an extended copy while the original survives — which is
/// exactly what makes |R(t)| grow exponentially (paper Table I) and what
/// state-based load shedding prunes.
///
/// Bindings are copy-on-write chains of pooled BindingCells (newest first):
/// extending a run appends exactly one cell and retains the parent's chain,
/// so the run itself is a small fixed-size record — the hot scalars plus one
/// VarBinding{head, first, count} per variable (inline up to kInlineVars,
/// a single heap row beyond). See docs/DATA_LAYOUT.md.
///
/// `trail` is the run's model trail for SBLS: one model-cell key per
/// transition the run (and its ancestors) performed. When the run later
/// produces a complete match or derives further runs, every cell on the
/// trail is credited (paper Algorithm 1). Shedders that do not learn leave
/// it empty.
class Run {
 public:
  /// Per-variable binding: a shared COW chain plus the two endpoints the hot
  /// path reads — `first` for SEQ variables (paper queries reference the
  /// first bound event) and `head` (most recent) for Kleene closures.
  struct VarBinding {
    BindingCell* head = nullptr;   ///< newest bound event, or null
    const Event* first = nullptr;  ///< oldest bound event, or null
    uint32_t count = 0;            ///< bound events for this variable
  };

  /// Variables stored inline in the run record before spilling the
  /// VarBinding row to the heap. 4 covers every query in the bench/test
  /// corpus; wider patterns cost one extra allocation per run, not per bind.
  static constexpr int kInlineVars = 4;

  Run(uint64_t id, int num_variables, int state, Timestamp start_ts)
      : id_(id),
        state_(state),
        start_ts_(start_ts),
        num_vars_(num_variables),
        vars_(num_variables <= kInlineVars ? inline_vars_
                                           : new VarBinding[num_variables]) {}

  ~Run() {
    for (int v = 0; v < num_vars_; ++v) ReleaseBindingChain(vars_[v].head);
    if (vars_ != inline_vars_) delete[] vars_;
  }

  Run(const Run&) = delete;
  Run& operator=(const Run&) = delete;

  uint64_t id() const { return id_; }
  int state() const { return state_; }
  Timestamp start_ts() const { return start_ts_; }

  /// Timestamp of the most recently bound event.
  Timestamp last_ts() const { return last_ts_; }

  /// Total number of bound events across all variables.
  int size() const { return size_; }

  int num_variables() const { return num_vars_; }

  /// Number of events bound to `var_index`.
  uint32_t binding_count(int var_index) const {
    return vars_[var_index].count;
  }

  /// Oldest event bound to `var_index` (null when unbound). O(1).
  const Event* first_event(int var_index) const {
    return vars_[var_index].first;
  }

  /// Newest event bound to `var_index` (null when unbound). O(1).
  const Event* last_event(int var_index) const {
    const VarBinding& vb = vars_[var_index];
    return vb.head == nullptr ? nullptr : vb.head->event.get();
  }

  /// `idx`-th (oldest-first) event bound to `var_index`, or null when out of
  /// range. O(1) at either end, O(count) in the middle (chain walk).
  const Event* kleene_event(int var_index, int idx) const;

  /// Materialises `var_index`'s binding oldest-first. O(count); match
  /// construction and diagnostics only — the hot path uses the O(1)
  /// endpoint accessors above.
  std::vector<EventPtr> binding(int var_index) const;

  /// Materialises all bindings (match construction; O(bound events)).
  std::vector<std::vector<EventPtr>> CopyBindings() const;

  /// Appends `event` to `var_index`'s binding and moves to `state`. The new
  /// chain cell is drawn from `pool` when one is given, else from the heap.
  void Bind(int var_index, EventPtr event, int state,
            BindingCellPool* pool = nullptr);

  /// Copy of this run extended with `event` bound to `var_index` at `state`.
  /// The child is drawn from `arena` when one is given, else from the heap;
  /// parent chains are shared (retained), only one cell is appended.
  RunPtr Extend(uint64_t child_id, int var_index, const EventPtr& event,
                int state, RunArena* arena = nullptr) const;

  /// SBLS model trail (see class comment).
  const std::vector<uint64_t>& trail() const { return trail_; }
  void PushTrail(uint64_t key) { trail_.push_back(key); }

  /// Incrementally maintained partial-match hash (owned by the shedder; 0
  /// when no hashing shedder is installed). Inherited by extended copies.
  uint64_t pm_hash() const { return pm_hash_; }
  void set_pm_hash(uint64_t h) { pm_hash_ = h; }

  /// Exact byte footprint of this run's record, for the degradation
  /// controller's run-set byte budget: the fixed record, the spilled
  /// VarBinding row (if any), one BindingCell per bound event, and the trail
  /// payload. Chain cells shared with derived runs (copy-on-write) are
  /// attributed to every run referencing them — deliberately conservative:
  /// the budget should trip before the allocator does. Asserted against the
  /// engine's incremental byte accounting in VerifyInvariants().
  size_t ApproxBytes() const {
    size_t bytes = sizeof(Run) + static_cast<size_t>(size_) * sizeof(BindingCell) +
                   trail_.size() * sizeof(uint64_t);
    if (vars_ != inline_vars_) {
      bytes += static_cast<size_t>(num_vars_) * sizeof(VarBinding);
    }
    return bytes;
  }

  /// Remaining time-to-live at `now` given the query window.
  Duration RemainingTtl(Timestamp now, Duration window) const {
    const Duration ttl = start_ts_ + window - now;
    return ttl < 0 ? 0 : ttl;
  }

  bool Expired(Timestamp now, Duration window) const {
    return now - start_ts_ > window;
  }

  std::string ToString(const ParsedQuery& query) const;

  /// Checkpoint codec. Events are interned into `table` (deduplicated across
  /// the run set, so shared events snapshot once) and bindings encode as
  /// table indices, oldest-first — the same wire format as the
  /// shared_ptr<vector> layout this replaced, so pre-refactor snapshots
  /// restore unchanged. Not virtual: runs are hot objects and gain no vtable
  /// for checkpointing; the engine's run-set StateComponent drives this.
  Status SerializeTo(ckpt::Sink& sink, ckpt::EventTableBuilder* table) const;

  /// Rebuilds a run from `source`, resolving bindings through `table`. The
  /// run is drawn from `arena` when one is given, else from the heap; chain
  /// cells come from `pool` when one is given.
  static Result<RunPtr> RestoreFrom(ckpt::Source& source,
                                    const ckpt::EventTable& table,
                                    RunArena* arena,
                                    BindingCellPool* pool = nullptr);

 private:
  /// Appends one chain cell for `event` on `var_index` without touching the
  /// run scalars (Bind and RestoreFrom share this).
  void AppendEvent(int var_index, EventPtr event, BindingCellPool* pool);

  uint64_t id_;
  int32_t state_;
  Timestamp start_ts_;
  Timestamp last_ts_ = 0;
  int32_t size_ = 0;
  int32_t num_vars_;
  VarBinding* vars_;  ///< = inline_vars_, or a heap row when num_vars_ > kInlineVars
  VarBinding inline_vars_[kInlineVars];
  std::vector<uint64_t> trail_;
  uint64_t pm_hash_ = 0;
};

/// Heap-allocates a Run outside any arena (tests, tools, standalone use).
template <typename... Args>
RunPtr MakeRun(Args&&... args) {
  return RunPtr(new Run(std::forward<Args>(args)...), RunDeleter{nullptr});
}

/// \brief BindingView over a run, optionally with a candidate event
/// virtually bound to `current_var` (take-edge evaluation).
///
/// See the virtual-append contract on BindingView.
class RunBindingView final : public BindingView {
 public:
  /// View without a candidate (exit/final/RETURN evaluation).
  explicit RunBindingView(const Run& run)
      : run_(run), current_var_(-1), current_(nullptr) {}

  /// View with `candidate` virtually bound to `current_var`.
  RunBindingView(const Run& run, int current_var, const Event* candidate)
      : run_(run), current_var_(current_var), current_(candidate) {}

  const Event* Single(int var_index) const override {
    if (var_index == current_var_ && current_ != nullptr) return current_;
    return run_.first_event(var_index);
  }

  int KleeneCount(int var_index) const override {
    int n = static_cast<int>(run_.binding_count(var_index));
    if (var_index == current_var_ && current_ != nullptr) ++n;
    return n;
  }

  const Event* KleeneAt(int var_index, int idx) const override {
    const int n = static_cast<int>(run_.binding_count(var_index));
    if (idx >= 0 && idx < n) return run_.kleene_event(var_index, idx);
    if (var_index == current_var_ && current_ != nullptr && idx == n) {
      return current_;
    }
    return nullptr;
  }

  const Event* Current() const override { return current_; }

 private:
  const Run& run_;
  int current_var_;
  const Event* current_;
};

}  // namespace cep

#endif  // CEPSHED_ENGINE_RUN_H_
