#ifndef CEPSHED_ENGINE_RUN_H_
#define CEPSHED_ENGINE_RUN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/time.h"
#include "event/event.h"
#include "nfa/nfa.h"
#include "query/expr.h"

namespace cep {

class Run;
class RunArena;

namespace ckpt {
class Sink;
class Source;
class EventTableBuilder;
class EventTable;
}  // namespace ckpt

/// Deleter for pooled runs: returns the slot to its arena, or falls back to
/// the global heap for runs allocated outside any arena (MakeRun).
struct RunDeleter {
  RunArena* arena = nullptr;
  void operator()(Run* run) const noexcept;
};

/// Owning handle to a Run, pooled (engine/run_arena.h) or heap-allocated.
using RunPtr = std::unique_ptr<Run, RunDeleter>;

/// Shared empty binding returned for unbound variables. Namespace-level so
/// the hot path pays no function-local-static guard, and there is no
/// mutable-adjacent hidden state once run evaluation moves onto worker
/// threads.
inline const std::vector<EventPtr> kEmptyBinding{};

/// \brief A partial match: one element of the engine's state set R(t).
///
/// A run records the NFA state it occupies and, per pattern variable, the
/// events bound so far. Under skip-till-any-match, transitions never mutate a
/// run — they produce an extended copy while the original survives — which is
/// exactly what makes |R(t)| grow exponentially (paper Table I) and what
/// state-based load shedding prunes.
///
/// `trail` is the run's model trail for SBLS: one model-cell key per
/// transition the run (and its ancestors) performed. When the run later
/// produces a complete match or derives further runs, every cell on the
/// trail is credited (paper Algorithm 1). Shedders that do not learn leave
/// it empty.
class Run {
 public:
  /// Per-variable binding: immutable, shared between a run and the runs
  /// extended from it (copy-on-write — extending a run clones only the
  /// variable being appended to, which keeps Extend() O(pattern size + one
  /// binding) instead of O(all bound events); the direction of the paper's
  /// compact-encoding citation [26]).
  using BindingPtr = std::shared_ptr<const std::vector<EventPtr>>;

  Run(uint64_t id, int num_variables, int state, Timestamp start_ts)
      : id_(id), state_(state), start_ts_(start_ts),
        bindings_(static_cast<size_t>(num_variables)) {}

  uint64_t id() const { return id_; }
  int state() const { return state_; }
  Timestamp start_ts() const { return start_ts_; }

  /// Timestamp of the most recently bound event.
  Timestamp last_ts() const { return last_ts_; }

  /// Total number of bound events across all variables.
  int size() const { return size_; }

  const std::vector<EventPtr>& binding(int var_index) const {
    return bindings_[var_index] == nullptr ? kEmptyBinding
                                           : *bindings_[var_index];
  }

  /// Materialises all bindings (match construction; O(bound events)).
  std::vector<std::vector<EventPtr>> CopyBindings() const;

  /// Appends `event` to `var_index`'s binding and moves to `state`.
  void Bind(int var_index, EventPtr event, int state);

  /// Copy of this run extended with `event` bound to `var_index` at `state`.
  /// The child is drawn from `arena` when one is given, else from the heap.
  RunPtr Extend(uint64_t child_id, int var_index, const EventPtr& event,
                int state, RunArena* arena = nullptr) const;

  /// SBLS model trail (see class comment).
  const std::vector<uint64_t>& trail() const { return trail_; }
  void PushTrail(uint64_t key) { trail_.push_back(key); }

  /// Incrementally maintained partial-match hash (owned by the shedder; 0
  /// when no hashing shedder is installed). Inherited by extended copies.
  uint64_t pm_hash() const { return pm_hash_; }
  void set_pm_hash(uint64_t h) { pm_hash_ = h; }

  /// Cheap estimate of this run's heap footprint, for the degradation
  /// controller's run-set byte budget. Shared (copy-on-write) bindings are
  /// attributed to every run referencing them — deliberately conservative:
  /// the budget should trip before the allocator does.
  size_t ApproxBytes() const {
    return sizeof(Run) + bindings_.size() * sizeof(BindingPtr) +
           static_cast<size_t>(size_) *
               (sizeof(EventPtr) + sizeof(std::vector<EventPtr>) / 2) +
           trail_.capacity() * sizeof(uint64_t);
  }

  /// Remaining time-to-live at `now` given the query window.
  Duration RemainingTtl(Timestamp now, Duration window) const {
    const Duration ttl = start_ts_ + window - now;
    return ttl < 0 ? 0 : ttl;
  }

  bool Expired(Timestamp now, Duration window) const {
    return now - start_ts_ > window;
  }

  std::string ToString(const ParsedQuery& query) const;

  /// Checkpoint codec. Events are interned into `table` (deduplicated across
  /// the run set, so shared events snapshot once) and bindings encode as
  /// table indices. Not virtual: runs are hot objects and gain no vtable for
  /// checkpointing; the engine's run-set StateComponent drives this.
  Status SerializeTo(ckpt::Sink& sink, ckpt::EventTableBuilder* table) const;

  /// Rebuilds a run from `source`, resolving bindings through `table`. The
  /// run is drawn from `arena` when one is given, else from the heap.
  static Result<RunPtr> RestoreFrom(ckpt::Source& source,
                                    const ckpt::EventTable& table,
                                    RunArena* arena);

 private:
  uint64_t id_;
  int state_;
  Timestamp start_ts_;
  Timestamp last_ts_ = 0;
  int size_ = 0;
  std::vector<BindingPtr> bindings_;
  std::vector<uint64_t> trail_;
  uint64_t pm_hash_ = 0;
};

/// Heap-allocates a Run outside any arena (tests, tools, standalone use).
template <typename... Args>
RunPtr MakeRun(Args&&... args) {
  return RunPtr(new Run(std::forward<Args>(args)...), RunDeleter{nullptr});
}

/// \brief BindingView over a run, optionally with a candidate event
/// virtually bound to `current_var` (take-edge evaluation).
///
/// See the virtual-append contract on BindingView.
class RunBindingView final : public BindingView {
 public:
  /// View without a candidate (exit/final/RETURN evaluation).
  explicit RunBindingView(const Run& run)
      : run_(run), current_var_(-1), current_(nullptr) {}

  /// View with `candidate` virtually bound to `current_var`.
  RunBindingView(const Run& run, int current_var, const Event* candidate)
      : run_(run), current_var_(current_var), current_(candidate) {}

  const Event* Single(int var_index) const override {
    if (var_index == current_var_ && current_ != nullptr) return current_;
    const auto& events = run_.binding(var_index);
    return events.empty() ? nullptr : events.front().get();
  }

  int KleeneCount(int var_index) const override {
    int n = static_cast<int>(run_.binding(var_index).size());
    if (var_index == current_var_ && current_ != nullptr) ++n;
    return n;
  }

  const Event* KleeneAt(int var_index, int idx) const override {
    const auto& events = run_.binding(var_index);
    if (idx >= 0 && idx < static_cast<int>(events.size())) {
      return events[idx].get();
    }
    if (var_index == current_var_ && current_ != nullptr &&
        idx == static_cast<int>(events.size())) {
      return current_;
    }
    return nullptr;
  }

  const Event* Current() const override { return current_; }

 private:
  const Run& run_;
  int current_var_;
  const Event* current_;
};

}  // namespace cep

#endif  // CEPSHED_ENGINE_RUN_H_
