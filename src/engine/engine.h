#ifndef CEPSHED_ENGINE_ENGINE_H_
#define CEPSHED_ENGINE_ENGINE_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ckpt/manager.h"
#include "ckpt/snapshot.h"
#include "ckpt/state_component.h"
#include "common/parallel.h"
#include "common/result.h"
#include "common/rng.h"
#include "engine/batch_eval.h"
#include "engine/degradation.h"
#include "engine/latency_monitor.h"
#include "engine/match.h"
#include "engine/metrics.h"
#include "engine/options.h"
#include "engine/run.h"
#include "engine/run_arena.h"
#include "engine/run_store.h"
#include "event/reorder.h"
#include "event/stream.h"
#include "nfa/nfa.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/quality.h"
#include "obs/trace.h"
#include "shedding/shedder.h"

namespace cep {

class ShadowOracle;

namespace opt {
class SharedPredTable;
struct SharedPredRow;
}  // namespace opt

/// \brief NFA-based CEP evaluation engine with pluggable load shedding.
///
/// One Engine evaluates one compiled query over one event stream. The engine
/// maintains the set R(t) of partial matches (runs), evaluates each incoming
/// event against every run's outgoing edges, emits complete matches, tracks
/// the latency estimate µ(t), and — when µ(t) exceeds the configured
/// threshold θ — asks the installed Shedder to discard partial matches
/// (state-based load shedding) and/or input events (input-based baselines).
///
/// Per-event processing is split into a side-effect-free *evaluation* phase
/// (predicate verdicts per run, shardable across a worker pool — see
/// ParallelOptions and docs/PARALLELISM.md) and a serial *merge* phase that
/// applies births, matches, and shedder bookkeeping in run order. Results
/// are therefore bit-identical for any thread/shard configuration.
///
/// One engine is driven by one thread at a time; the worker pool is an
/// internal implementation detail of ProcessEvent.
class Engine {
 public:
  using MatchCallback = std::function<void(const Match&)>;

  /// `shedder` may be null (exhaustive processing, used for golden runs).
  Engine(NfaPtr nfa, EngineOptions options, ShedderPtr shedder = nullptr);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Processes one event. Events must arrive in non-decreasing timestamp
  /// order. Errors indicate genuinely malformed queries/events (type errors
  /// in predicates), not match failures.
  Status ProcessEvent(const EventPtr& event);

  /// ProcessEvent with the error budget applied: when
  /// options.error_budget.enabled, a failing event is quarantined (skipped,
  /// counted in metrics().quarantined_events, engine state recovered) and OK
  /// is returned; only max_consecutive_errors back-to-back failures
  /// propagate. With the budget disabled this is exactly ProcessEvent.
  Status OfferEvent(const EventPtr& event);

  /// Feeds a batch through OfferEvent in order. Semantically identical to
  /// the event-at-a-time loop; exists to amortize per-event dispatch on the
  /// ingestion path (one virtual stream pull and one branch-predicted loop
  /// per batch instead of per event).
  Status ProcessBatch(std::span<const EventPtr> events);

  /// Drains `stream` through OfferEvent (poison-tolerant when the error
  /// budget is enabled; identical to repeated ProcessEvent otherwise).
  /// `batch_size` > 1 pulls events in batches of that size (ProcessBatch).
  Status ProcessStream(EventStream* stream, size_t batch_size = 1);

  /// End-of-stream: confirms and emits runs parked at deferred final states
  /// (trailing negation, whose windows have not closed yet). Other runs are
  /// left untouched; processing may continue afterwards, but a run emitted
  /// here will not be emitted again on expiry.
  Status Flush();

  /// Matches accumulated so far (when options.collect_matches).
  const std::vector<Match>& matches() const { return matches_; }

  /// Moves the accumulated matches out (harness convenience).
  std::vector<Match> TakeMatches() { return std::move(matches_); }

  /// Invoked for every match in addition to (or instead of) accumulation.
  void SetMatchCallback(MatchCallback callback) {
    match_callback_ = std::move(callback);
  }

  /// Checks the run-conservation ledger: every run that ever entered R(t)
  /// (runs_created, plus runs_extended under skip-till-any-match, where each
  /// extension is a distinct run object) must be accounted for by exactly one
  /// exit counter (runs_completed / runs_expired / runs_killed / runs_shed /
  /// runs_aborted) or still be live. Also validates peak/derived counters.
  /// Meaningful at the merge barrier — i.e. between (Offer|Process)Event
  /// calls; debug builds assert it after every processed event. Returns
  /// Internal naming the broken equation on violation.
  Status VerifyInvariants() const;

  const EngineMetrics& metrics() const { return metrics_; }
  const Nfa& nfa() const { return *nfa_; }
  /// The shared automaton handle (optimizer rewrites alias its analysis).
  const NfaPtr& nfa_ptr() const { return nfa_; }
  const EngineOptions& options() const { return options_; }
  Shedder* shedder() { return shedder_.get(); }
  const Shedder* shedder() const { return shedder_.get(); }

  /// Releases the installed shedder. MultiEngine::Optimize extracts it when
  /// rebuilding this engine around a rewritten automaton; only meaningful
  /// before any event has been processed.
  ShedderPtr TakeShedder() { return std::move(shedder_); }

  // --- multi-query optimizer integration (src/opt/, docs/OPTIMIZER.md) ------

  /// Installs the cross-query shared-predicate verdict table. The owner
  /// (MultiEngine) must call table->Begin{Event,Batch} before handing each
  /// event to the engine so the event's verdict row exists; the engine then
  /// (a) reads precomputed verdicts for interned edge predicates instead of
  /// re-evaluating them, and (b) skips the full per-event pipeline when the
  /// row proves no start edge can fire and nothing else observes the event
  /// (no live runs, no shedder/degradation/shadow/tracer/reorder buffer).
  /// nullptr detaches. The table must outlive the engine's last event.
  void SetSharedPreds(const opt::SharedPredTable* table) {
    shared_preds_ = table;
  }
  const opt::SharedPredTable* shared_preds() const { return shared_preds_; }

  /// Events short-circuited by the shared-verdict skip fast path. Skipped
  /// events still count in metrics().events_processed with full virtual-cost
  /// accounting; the savings are wall-clock only.
  uint64_t shared_skips() const { return shared_skips_; }
  /// Restore path: the skip counter is optimizer state (it lives outside
  /// EngineMetrics), so MultiEngine's opt component reinstates it.
  void set_shared_skips(uint64_t v) { shared_skips_ = v; }

  /// Active partial matches R(t). Null slots never escape ProcessEvent.
  const std::vector<RunPtr>& runs() const { return run_store_.slots(); }
  size_t num_runs() const { return run_store_.size(); }

  /// The flat SoA store backing R(t) (column/bitmap introspection).
  const RunStore& run_store() const { return run_store_; }

  /// Compiled batched-evaluation plan for this engine's query.
  const BatchEvalPlan& batch_plan() const { return batch_plan_; }

  /// Current latency estimate µ(t) in microseconds.
  double CurrentLatencyMicros() const {
    return latency_monitor_->CurrentLatencyMicros();
  }

  /// Forces a shedding episode dropping `target` runs (testing / ablations).
  void ForceShed(size_t target);

  /// Degradation ladder state (null unless options.degradation.enabled).
  const DegradationController* degradation() const {
    return degradation_.get();
  }
  DegradationLevel degradation_level() const {
    return degradation_ != nullptr ? degradation_->level()
                                   : DegradationLevel::kHealthy;
  }

  /// Run-set byte estimate maintained for the degradation byte budget
  /// (0 when the ladder is disabled).
  size_t approx_run_bytes() const { return approx_run_bytes_; }

  /// Bytes held by co-tenant engines sharing this engine's byte budget.
  /// The degradation ladder compares `approx_run_bytes() + external` against
  /// the budget, so a tenant's engines shed as one unit: when a sibling
  /// query balloons, this engine feels the pressure too. Not serialized —
  /// the owning session recomputes it after every event and after restore.
  void SetExternalRunBytes(size_t bytes) { external_run_bytes_ = bytes; }
  size_t external_run_bytes() const { return external_run_bytes_; }

  /// Current quarantined-failure streak (error budget).
  size_t consecutive_errors() const { return consecutive_errors_; }

  /// Shares an external worker pool for the evaluation phase (MultiEngine
  /// hands all its engines one pool). Replaces any pool the engine owns;
  /// nullptr reverts to serial evaluation. The pool must outlive the
  /// engine's last ProcessEvent.
  void SetThreadPool(ThreadPool* pool);

  /// Pool used for sharded evaluation (null = serial).
  ThreadPool* thread_pool() const { return pool_; }

  /// The run arena backing R(t) (allocation pooling stats).
  const RunArena& arena() const { return arena_; }

  /// Mirrors `buffer`'s late-drop / occupancy counters into metrics() on
  /// every processed event (and on SyncReorderMetrics). The buffer must
  /// outlive the engine or be detached with nullptr.
  void AttachReorderBuffer(const ReorderBuffer* buffer) {
    reorder_buffer_ = buffer;
    SyncReorderMetrics();
  }

  /// Pulls the attached reorder buffer's counters into metrics() now
  /// (useful after flushing the buffer at end-of-stream).
  void SyncReorderMetrics();

  // --- checkpoint / restore (src/ckpt/, docs/CHECKPOINTING.md) --------------

  /// Serializes the engine's full durable state — run set, learned model
  /// backends, matches, metrics, µ(t) monitor, degradation ladder, RNG
  /// streams, and ingestion offset — into versioned snapshot bytes. Call
  /// between events (the serial merge barrier), where state is quiescent.
  Result<std::string> SerializeSnapshot();

  /// Forces a snapshot now and writes it durably to the configured
  /// checkpoint directory before returning. InvalidArgument when
  /// options.checkpoint has no directory.
  Status Checkpoint();

  /// Replaces this engine's state from snapshot bytes. The engine must be
  /// configured like the writer (same shedder kind, latency mode, arena
  /// layout, attached audit log); mismatches fail with a typed error rather
  /// than restoring skewed state. On failure the engine should be discarded.
  Status RestoreFromSnapshot(std::string_view bytes);

  /// Restores from a snapshot file — or, when `path` is a directory, from
  /// the newest valid snapshot inside it (torn temp files and corrupt
  /// snapshots are skipped).
  Status RestoreFromFile(const std::string& path);

  /// Events consumed through OfferEvent/ProcessStream so far: the resume
  /// position recorded in snapshots. A driver restoring from a snapshot
  /// skips this many events before resuming the feed.
  uint64_t stream_offset() const { return stream_offset_; }

  /// Waits for outstanding background checkpoint writes and surfaces the
  /// first write error since the last flush. OK when checkpointing is off.
  Status FlushCheckpoints();

  /// Snapshots written (sync + async) since construction.
  uint64_t checkpoints_written() const;

  /// The engine's durable components, in serialization order (tests,
  /// ckpt_tool). Rebuilt on each call to reflect current attachments.
  const ckpt::ComponentRegistry& components();

  // --- observability (src/obs/, docs/OBSERVABILITY.md) ----------------------

  /// Identity of this engine in observability output: audit records carry it
  /// as engine_id, trace spans use it as their tid. MultiEngine assigns the
  /// query index; standalone engines default to 0.
  void SetObsId(uint32_t id) { obs_id_ = id; }
  uint32_t obs_id() const { return obs_id_; }

  /// Records every shedding decision into `log` (shared across engines
  /// under MultiEngine). The log must outlive the engine; nullptr detaches.
  void AttachAuditLog(obs::ShedAuditLog* log) { audit_log_ = log; }
  obs::ShedAuditLog* audit_log() const { return audit_log_; }

  /// Emits spans for event processing, merges, shedding episodes, and
  /// ladder transitions into `tracer`. Timestamps are the engine's
  /// cumulative busy clock (virtual microseconds under kVirtualCost /
  /// kQueueSimulation — deterministic across thread counts). nullptr
  /// detaches.
  void AttachTracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Invoked once per shed victim, before the run is destroyed, with the
  /// audit record describing the decision (called even when no audit log is
  /// attached). Lets harnesses capture victim bindings for post-hoc recall
  /// attribution against an oracle run.
  using ShedCallback =
      std::function<void(const Run&, const obs::ShedDecisionRecord&)>;
  void SetShedCallback(ShedCallback callback) {
    shed_callback_ = std::move(callback);
  }

  /// Latency histograms (virtual microseconds except under kWallClock).
  const obs::Histogram& event_busy_histogram() const { return event_busy_us_; }
  const obs::Histogram& merge_histogram() const { return merge_us_; }
  const obs::Histogram& shed_episode_histogram() const {
    return shed_episode_us_;
  }

  /// Mirrors every EngineMetrics field plus the latency histograms into
  /// `registry` under `labels` (e.g. {{"query", name}} from MultiEngine).
  /// Call again to refresh; counters are snapshot-assigned.
  void ExportMetrics(obs::Registry* registry,
                     const obs::LabelSet& labels = {}) const;

  // --- shedding-quality observability (options.quality) ---------------------

  /// Shadow recall oracle (null unless options.quality.shadow enabled).
  const ShadowOracle* shadow() const { return shadow_.get(); }

  /// Completion-model calibration monitor (null unless enabled).
  const obs::CalibrationMonitor* calibration() const {
    return calibration_.get();
  }

  /// θ burn-rate SLO monitor (null unless enabled).
  const obs::ThetaSloMonitor* theta_slo() const { return slo_.get(); }

  /// Closes a still-open shadow span so end-of-stream matches are scored.
  /// Call after Flush(); no-op without the shadow oracle.
  void FinishShadowSpan();

  /// Quality document: {"schema_version":1,"shadow":{...},
  /// "calibration":{...},"theta_slo":{...}} with absent sections omitted.
  /// Schema checked by tools/validate_obs `quality`.
  std::string ExportQualityJson() const;

 private:
  /// Per-run verdict computed by the evaluation phase. Fired edge indices
  /// live in the owning shard's scratch, appended in run order, so the
  /// merge phase consumes them with a cursor — no per-run allocation.
  struct RunDecision {
    uint32_t ops = 0;       ///< edge evaluations performed for this run
    uint16_t fired = 0;     ///< passing-edge entries appended to shard scratch
    uint16_t fast_ops = 0;  ///< ops decided by the compiled fast path
    uint8_t flags = 0;      ///< kDecision* bits
  };

  static constexpr uint8_t kDecisionExpired = 1;
  static constexpr uint8_t kDecisionKilled = 2;
  static constexpr uint8_t kDecisionError = 4;

  /// Per-shard evaluation scratch. Padded so adjacent shards' bookkeeping
  /// does not false-share while workers append concurrently.
  struct alignas(64) ShardScratch {
    std::vector<uint16_t> fired;  ///< passing edge indices, run order
    std::vector<std::pair<size_t, Status>> errors;  ///< (run index, status)
  };

  /// Evaluates edge predicates with `event` virtually bound to
  /// `edge.var_index` of `run`. Exit predicates (if any) are checked first.
  Result<bool> EvalEdge(const Run& run, const Edge& edge, const Event& event);

  /// Evaluation phase over runs_[begin, end): writes decisions_ and
  /// `scratch`. Reads engine state but mutates nothing else — safe to run
  /// on worker threads alongside other shards.
  void EvalRunRange(const Event& event, Timestamp now, size_t begin,
                    size_t end, ShardScratch* scratch);

  /// Merge phase: applies the decisions in run order (expiry, kills,
  /// extensions, emissions, shedder hooks), exactly reproducing serial
  /// evaluation. `num_shards` must match the evaluation phase split.
  Status ApplyDecisions(const EventPtr& event, Timestamp now,
                        size_t num_shards, bool track_bytes,
                        size_t* live_bytes, bool* any_dead);

  /// Shard bounds: runs_[ShardBegin(s), ShardBegin(s+1)) for shard s.
  size_t ShardBegin(size_t shard, size_t num_shards, size_t n) const {
    return n * shard / num_shards;
  }

  /// Emits a match from `run` if the state's final predicates hold.
  /// Returns true if a match was emitted.
  Result<bool> TryEmit(const Run& run, Timestamp now);

  Result<EventPtr> BuildComplexEvent(const Run& run);

  RunArena* arena_ptr() {
    return options_.parallel.arena_block_runs > 0 ? &arena_ : nullptr;
  }
  void TriggerShed(Timestamp now, double latency);
  void CompactRuns();

  /// Books `bytes` out of approx_run_bytes_ when the degradation ladder's
  /// incremental accounting is active and in sync (shedding / Flush kill
  /// runs outside the per-event recomputation).
  void NoteRunBytesFreed(size_t bytes);

  /// Shared victim-application loop of TriggerShed/ForceShed: audits each
  /// victim (scores carried in the decision + audit log + shed callback),
  /// resets the slots, and bumps runs_shed. Returns the number of victims
  /// applied (stale / duplicate indices are skipped).
  size_t ApplyVictims(const ShedDecision& decision, Timestamp now);

  /// True when shed decisions should carry per-victim scores (an audit sink
  /// or shed callback will consume them).
  bool WantShedScores() const;

  /// Cumulative busy clock in whole microseconds — the trace timebase.
  uint64_t BusyClockMicros() const {
    return static_cast<uint64_t>(metrics_.busy_micros);
  }

  /// Restores run-set consistency after a failed ProcessEvent (drops the
  /// failing event's half-born runs, compacts null slots).
  void RecoverFromError();

  /// ProcessEvent body. The public ProcessEvent wraps it to drive the
  /// shadow oracle strictly after the event is fully applied (outside the
  /// latency measurement), so the oracle can never perturb primary results.
  Status ProcessEventInternal(const EventPtr& event);

  /// Joins the model's prediction for `run` (when the shedder has one)
  /// against its actual exit outcome in the calibration monitor. Called at
  /// every run exit in the serial merge phase, so observation order — and
  /// the monitor's bytes — are deterministic.
  void NoteRunOutcome(const Run& run, Timestamp now, bool completed);

  /// One θ SLO sample: was µ(t) above the bound after this event?
  void NoteSloSample(double busy_micros);

  /// Decides, from the current shared-verdict row alone, whether `event`
  /// can be skipped outright: no live runs, nothing but edge firing
  /// observes events, and every matching start edge has an interned
  /// predicate the row already proves false. Second member is the edge
  /// op count to account for the skipped event (identical to what the
  /// full pipeline would have charged).
  std::pair<bool, uint64_t> ProbeSkip(const Event& event) const;

  /// Replays ProcessEventInternal's per-event bookkeeping (metrics, µ(t),
  /// SLO sample, busy clock) for a skipped event without touching R(t).
  void NoteSkippedEvent(const EventPtr& event, uint64_t ops);

  // Composite-state adapters (defined in engine.cc): they expose groups of
  // engine fields — scalars, the run set, accumulated matches, metrics — as
  // StateComponents so checkpointing stays a registry walk.
  class CoreComponent;
  class RunSetComponent;
  class MatchesComponent;
  class MetricsComponent;

  /// Rebuilds components_ from the engine's current configuration and
  /// attachments (audit log, shedder). Section order is the snapshot layout.
  void BuildComponentRegistry();

  /// Interval-driven snapshot from OfferEvent: serialize at the merge
  /// barrier, hand off to the background writer (or write synchronously
  /// under options.checkpoint.synchronous).
  Status MaybeCheckpoint();

  NfaPtr nfa_;
  EngineOptions options_;
  ShedderPtr shedder_;
  std::unique_ptr<LatencyMonitor> latency_monitor_;
  std::unique_ptr<DegradationController> degradation_;
  Rng resilience_rng_;
  const ReorderBuffer* reorder_buffer_ = nullptr;

  // Arena must outlive the run store and vectors drawing from it
  // (destruction is in reverse declaration order).
  RunArena arena_;
  BatchEvalPlan batch_plan_;  ///< compiled predicates; outlives run_store_
  RunStore run_store_;        ///< R(t): slots + SoA columns + live/victim masks
  std::vector<RunPtr> new_runs_;  // births of the current event
  std::vector<Match> matches_;
  MatchCallback match_callback_;
  EngineMetrics metrics_;

  // Worker pool for the evaluation phase: owned when options.parallel
  // requests threads, or shared via SetThreadPool.
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;
  std::vector<RunDecision> decisions_;
  std::vector<ShardScratch> shard_scratch_;

  // Per-state bitmask over (event type id % 64): quick "any edge may react
  // to this event type" filter on the per-run hot loop.
  std::vector<uint64_t> state_type_masks_;
  Run scratch_empty_run_;  ///< empty-binding view for spawn edge evaluation
  SchemaPtr output_schema_;  ///< RETURN complex event schema (or null)

  // --- multi-query optimizer hookup -----------------------------------------
  /// Shared-predicate verdict table (owned by MultiEngine's optimizer state;
  /// null for standalone engines and unoptimized fan-out).
  const opt::SharedPredTable* shared_preds_ = nullptr;
  /// Verdict row of the event currently in flight. Written serially at the
  /// top of ProcessEventInternal; evaluation-phase shards read it only.
  const opt::SharedPredRow* shared_row_ = nullptr;
  uint64_t shared_skips_ = 0;

  uint64_t next_run_id_ = 1;
  uint64_t next_match_id_ = 1;
  uint64_t events_since_shed_ = 0;
  Timestamp last_event_ts_ = INT64_MIN;
  uint64_t ops_this_event_ = 0;
  size_t approx_run_bytes_ = 0;
  /// True while approx_run_bytes_ is an exact sum over the live run set
  /// (set by the per-event recomputation, cleared on restore / quarantine).
  /// Gates the exact-sum assertion in VerifyInvariants and the incremental
  /// subtraction in NoteRunBytesFreed.
  bool bytes_synced_ = false;
  size_t external_run_bytes_ = 0;
  size_t consecutive_errors_ = 0;

  // --- checkpoint / restore --------------------------------------------------
  uint64_t stream_offset_ = 0;
  std::unique_ptr<CoreComponent> core_component_;
  std::unique_ptr<RunSetComponent> runs_component_;
  std::unique_ptr<MatchesComponent> matches_component_;
  std::unique_ptr<MetricsComponent> metrics_component_;
  ckpt::ComponentRegistry components_;
  std::unique_ptr<ckpt::CheckpointManager> ckpt_manager_;

  // --- observability ---------------------------------------------------------
  uint32_t obs_id_ = 0;
  obs::ShedAuditLog* audit_log_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  ShedCallback shed_callback_;
  obs::Histogram event_busy_us_;
  obs::Histogram merge_us_;
  obs::Histogram shed_episode_us_;

  // --- shedding-quality observability ----------------------------------------
  std::unique_ptr<ShadowOracle> shadow_;
  std::unique_ptr<obs::CalibrationMonitor> calibration_;
  std::unique_ptr<obs::ThetaSloMonitor> slo_;
};

}  // namespace cep

#endif  // CEPSHED_ENGINE_ENGINE_H_
