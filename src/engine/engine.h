#ifndef CEPSHED_ENGINE_ENGINE_H_
#define CEPSHED_ENGINE_ENGINE_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "engine/latency_monitor.h"
#include "engine/match.h"
#include "engine/metrics.h"
#include "engine/options.h"
#include "engine/run.h"
#include "event/stream.h"
#include "nfa/nfa.h"
#include "shedding/shedder.h"

namespace cep {

/// \brief NFA-based CEP evaluation engine with pluggable load shedding.
///
/// One Engine evaluates one compiled query over one event stream. The engine
/// maintains the set R(t) of partial matches (runs), evaluates each incoming
/// event against every run's outgoing edges, emits complete matches, tracks
/// the latency estimate µ(t), and — when µ(t) exceeds the configured
/// threshold θ — asks the installed Shedder to discard partial matches
/// (state-based load shedding) and/or input events (input-based baselines).
///
/// Not thread-safe; one engine per thread.
class Engine {
 public:
  using MatchCallback = std::function<void(const Match&)>;

  /// `shedder` may be null (exhaustive processing, used for golden runs).
  Engine(NfaPtr nfa, EngineOptions options, ShedderPtr shedder = nullptr);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Processes one event. Events must arrive in non-decreasing timestamp
  /// order. Errors indicate genuinely malformed queries/events (type errors
  /// in predicates), not match failures.
  Status ProcessEvent(const EventPtr& event);

  /// Drains `stream` through ProcessEvent.
  Status ProcessStream(EventStream* stream);

  /// End-of-stream: confirms and emits runs parked at deferred final states
  /// (trailing negation, whose windows have not closed yet). Other runs are
  /// left untouched; processing may continue afterwards, but a run emitted
  /// here will not be emitted again on expiry.
  Status Flush();

  /// Matches accumulated so far (when options.collect_matches).
  const std::vector<Match>& matches() const { return matches_; }

  /// Moves the accumulated matches out (harness convenience).
  std::vector<Match> TakeMatches() { return std::move(matches_); }

  /// Invoked for every match in addition to (or instead of) accumulation.
  void SetMatchCallback(MatchCallback callback) {
    match_callback_ = std::move(callback);
  }

  const EngineMetrics& metrics() const { return metrics_; }
  const Nfa& nfa() const { return *nfa_; }
  const EngineOptions& options() const { return options_; }
  Shedder* shedder() { return shedder_.get(); }

  /// Active partial matches R(t). Null slots never escape ProcessEvent.
  const std::vector<std::unique_ptr<Run>>& runs() const { return runs_; }
  size_t num_runs() const { return runs_.size(); }

  /// Current latency estimate µ(t) in microseconds.
  double CurrentLatencyMicros() const {
    return latency_monitor_->CurrentLatencyMicros();
  }

  /// Forces a shedding episode dropping `target` runs (testing / ablations).
  void ForceShed(size_t target);

 private:
  /// Evaluates edge predicates with `event` virtually bound to
  /// `edge.var_index` of `run`. Exit predicates (if any) are checked first.
  Result<bool> EvalEdge(const Run& run, const Edge& edge, const Event& event);

  /// Emits a match from `run` if the state's final predicates hold.
  /// Returns true if a match was emitted.
  Result<bool> TryEmit(const Run& run, Timestamp now);

  Result<EventPtr> BuildComplexEvent(const Run& run);

  void TriggerShed(Timestamp now, double latency);
  void CompactRuns();

  NfaPtr nfa_;
  EngineOptions options_;
  ShedderPtr shedder_;
  std::unique_ptr<LatencyMonitor> latency_monitor_;

  std::vector<std::unique_ptr<Run>> runs_;
  std::vector<std::unique_ptr<Run>> new_runs_;  // births of the current event
  std::vector<Match> matches_;
  MatchCallback match_callback_;
  EngineMetrics metrics_;

  // Per-state bitmask over (event type id % 64): quick "any edge may react
  // to this event type" filter on the per-run hot loop.
  std::vector<uint64_t> state_type_masks_;
  Run scratch_empty_run_;  ///< empty-binding view for spawn edge evaluation
  SchemaPtr output_schema_;  ///< RETURN complex event schema (or null)

  uint64_t next_run_id_ = 1;
  uint64_t next_match_id_ = 1;
  uint64_t events_since_shed_ = 0;
  Timestamp last_event_ts_ = INT64_MIN;
  uint64_t ops_this_event_ = 0;
};

}  // namespace cep

#endif  // CEPSHED_ENGINE_ENGINE_H_
