#include "engine/multi.h"

#include <sys/stat.h>

#include <map>

#include "ckpt/manager.h"
#include "ckpt/snapshot.h"
#include "common/hash.h"
#include "common/string_util.h"
#include "opt/fingerprint.h"

namespace cep {

/// \brief The optimizer's durable state as one checkpoint component.
///
/// Serializes the optimized-layout digest (so restore refuses a snapshot
/// written under a different query set / merge mapping) plus the counters
/// that live outside any single engine: the prefilter drop count, the shared
/// table's evaluation count, and each physical engine's shared-skip count
/// (deliberately kept out of EngineMetrics, whose field table is
/// reflection-tested against the unoptimized engine).
class MultiEngine::OptStateComponent final : public ckpt::StateComponent {
 public:
  explicit OptStateComponent(MultiEngine* owner) : owner_(owner) {}

  Status SerializeTo(ckpt::Sink& sink) const override {
    sink.WriteU64(owner_->opt_digest_);
    sink.WriteU64(owner_->names_.size());
    sink.WriteU64(owner_->engines_.size());
    sink.WriteU64(owner_->opt_events_prefiltered_);
    sink.WriteU64(owner_->ir_ != nullptr ? owner_->ir_->preds.evals_done()
                                         : 0);
    for (const auto& engine : owner_->engines_) {
      sink.WriteU64(engine->shared_skips());
    }
    return Status::OK();
  }

  Status RestoreFrom(ckpt::Source& source) override {
    CEP_ASSIGN_OR_RETURN(const uint64_t digest, source.ReadU64());
    if (digest != owner_->opt_digest_) {
      return Status::InvalidArgument(StrFormat(
          "optimizer digest mismatch: snapshot %llx vs engine %llx (the "
          "snapshot was written under a different query set or pass "
          "configuration)",
          static_cast<unsigned long long>(digest),
          static_cast<unsigned long long>(owner_->opt_digest_)));
    }
    CEP_ASSIGN_OR_RETURN(const uint64_t queries, source.ReadU64());
    CEP_ASSIGN_OR_RETURN(const uint64_t engines, source.ReadU64());
    if (queries != owner_->names_.size() ||
        engines != owner_->engines_.size()) {
      return Status::InvalidArgument(StrFormat(
          "optimizer layout mismatch: snapshot has %llu queries on %llu "
          "engines, this MultiEngine has %zu on %zu",
          static_cast<unsigned long long>(queries),
          static_cast<unsigned long long>(engines), owner_->names_.size(),
          owner_->engines_.size()));
    }
    CEP_ASSIGN_OR_RETURN(owner_->opt_events_prefiltered_, source.ReadU64());
    CEP_ASSIGN_OR_RETURN(const uint64_t evals, source.ReadU64());
    if (owner_->ir_ != nullptr) owner_->ir_->preds.set_evals_done(evals);
    for (const auto& engine : owner_->engines_) {
      CEP_ASSIGN_OR_RETURN(const uint64_t skips, source.ReadU64());
      engine->set_shared_skips(skips);
    }
    return Status::OK();
  }

 private:
  MultiEngine* owner_;
};

MultiEngine::MultiEngine() = default;

MultiEngine::~MultiEngine() {
  // Engines hold raw pointers into ir_ (shared predicate table); tear them
  // down first regardless of member declaration order.
  engines_.clear();
}

size_t MultiEngine::AddQuery(NfaPtr nfa, EngineOptions options,
                             ShedderPtr shedder, std::string name) {
  // Default name: the query's explicit label, else the complex event it
  // emits (queries rarely carry a label, and "warning" beats "" in a
  // metrics dashboard). Duplicates are fine — ExportMetrics de-collides.
  if (name.empty()) name = nfa->query().name;
  if (name.empty()) name = nfa->query().return_spec.event_name;
  engines_.push_back(
      std::make_unique<Engine>(std::move(nfa), options, std::move(shedder)));
  if (pool_ != nullptr) engines_.back()->SetThreadPool(pool_.get());
  Engine* engine = engines_.back().get();
  engine->SetObsId(static_cast<uint32_t>(engines_.size() - 1));
  engine->AttachAuditLog(audit_log_);
  engine->AttachTracer(tracer_);
  names_.push_back(std::move(name));
  query_to_engine_.push_back(engines_.size() - 1);
  return names_.size() - 1;
}

Status MultiEngine::Optimize(const opt::OptOptions& options) {
  if (optimized_) {
    return Status::InvalidArgument("MultiEngine::Optimize called twice");
  }
  if (engines_.empty()) {
    return Status::InvalidArgument("no queries registered to optimize");
  }
  if (stream_offset() != 0 || TotalRuns() != 0) {
    return Status::InvalidArgument(
        "MultiEngine::Optimize must run before any event is processed");
  }

  auto ir = std::make_unique<opt::MultiQueryIr>();
  ir->units.reserve(engines_.size());
  for (size_t i = 0; i < engines_.size(); ++i) {
    const Engine& engine = *engines_[i];
    const EngineOptions& opts = engine.options();
    opt::QueryUnit unit;
    unit.query_index = i;
    unit.name = names_[i];
    unit.nfa = engine.nfa_ptr();
    unit.selection = opts.selection;
    unit.has_shedder = engine.shedder() != nullptr;
    unit.has_degradation = opts.degradation.enabled;
    unit.has_latency_threshold = opts.latency_threshold_micros > 0.0;
    unit.config_fingerprint = opt::FingerprintEngineOptions(opts);
    // Shedder state is per-query and cannot be serviced by a shared run set.
    unit.mergeable = options.merge && !unit.has_shedder;
    unit.leader = i;
    ir->units.push_back(std::move(unit));
  }

  opt::PassManager pipeline = opt::MakeDefaultPipeline(options);
  dumps_.clear();
  CEP_RETURN_NOT_OK(pipeline.Run(ir.get(), options.dump_ir, &dumps_));

  // Rebuild the physical engines around the rewritten automata. Each merge
  // leader gets a fresh engine on its (possibly rewritten) NFA; members are
  // remapped onto their leader's engine. Engines are rebuilt rather than
  // patched because the Nfa is immutable by design.
  std::vector<std::unique_ptr<Engine>> rebuilt;
  rebuilt.reserve(engines_.size());
  for (size_t i = 0; i < engines_.size(); ++i) {
    if (ir->units[i].leader != i) continue;
    Engine& old = *engines_[i];
    auto fresh = std::make_unique<Engine>(ir->units[i].nfa, old.options(),
                                          old.TakeShedder());
    fresh->SetObsId(static_cast<uint32_t>(i));
    fresh->AttachAuditLog(audit_log_);
    fresh->AttachTracer(tracer_);
    if (pool_ != nullptr) fresh->SetThreadPool(pool_.get());
    fresh->SetSharedPreds(&ir->preds);
    query_to_engine_[i] = rebuilt.size();
    rebuilt.push_back(std::move(fresh));
  }
  for (size_t i = 0; i < engines_.size(); ++i) {
    const size_t leader = ir->units[i].leader;
    if (leader != i) query_to_engine_[i] = query_to_engine_[leader];
  }

  // Layout digest: query count, per-query config fingerprint, and the merge
  // mapping. Embedded in snapshots so a restore under a different layout
  // fails loudly instead of scattering state across the wrong engines.
  uint64_t digest = Mix64(names_.size());
  for (const opt::QueryUnit& unit : ir->units) {
    digest = HashCombine(digest, unit.config_fingerprint);
    digest = HashCombine(digest, Mix64(unit.leader));
  }
  opt_digest_ = HashCombine(digest, Mix64(rebuilt.size()));

  engines_ = std::move(rebuilt);
  ir_ = std::move(ir);
  optimized_ = true;
  return Status::OK();
}

const ckpt::ComponentRegistry& MultiEngine::opt_components() {
  if (opt_component_ == nullptr) {
    opt_component_ = std::make_unique<OptStateComponent>(this);
    opt_components_.Register("opt.state", opt_component_.get());
  }
  return opt_components_;
}

void MultiEngine::PrepareEvent(const EventPtr& event) {
  if (!optimized_) return;
  ir_->preds.BeginEvent(*event);
  if (ir_->prefilter.enabled()) {
    const opt::SharedPredRow* row = ir_->preds.RowFor(event.get());
    if (row != nullptr && ir_->prefilter.ShouldDrop(*event, *row)) {
      ++opt_events_prefiltered_;
    }
  }
}

void MultiEngine::PrepareBatch(std::span<const EventPtr> events) {
  if (!optimized_) return;
  ir_->preds.BeginBatch(events);
  if (ir_->prefilter.enabled()) {
    for (const EventPtr& event : events) {
      const opt::SharedPredRow* row = ir_->preds.RowFor(event.get());
      if (row != nullptr && ir_->prefilter.ShouldDrop(*event, *row)) {
        ++opt_events_prefiltered_;
      }
    }
  }
}

void MultiEngine::AttachAuditLog(obs::ShedAuditLog* log) {
  audit_log_ = log;
  for (auto& engine : engines_) engine->AttachAuditLog(log);
}

void MultiEngine::AttachTracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  for (auto& engine : engines_) engine->AttachTracer(tracer);
}

void MultiEngine::ExportMetrics(obs::Registry* registry) const {
  std::map<std::string, size_t> name_uses;
  for (const std::string& name : names_) ++name_uses[name];
  for (size_t i = 0; i < names_.size(); ++i) {
    std::string label = names_[i];
    // Two queries may legitimately share a name (same query text registered
    // twice); a stable query-index suffix keeps their metric families apart.
    if (name_uses[label] > 1) label += StrFormat("#%zu", i);
    engines_[query_to_engine_[i]]->ExportMetrics(registry,
                                                 {{"query", label}});
  }
  if (names_.size() > 1) {
    // Unlabelled aggregate: counter fields only (histograms merge poorly
    // with snapshot semantics, and per-query is the interesting view anyway).
    const EngineMetrics total = AggregateMetrics();
    size_t count = 0;
    const EngineMetricField* fields = EngineMetricFields(&count);
    for (size_t i = 0; i < count; ++i) {
      const EngineMetricField& field = fields[i];
      if (field.u64 != nullptr && field.monotonic) {
        registry->GetCounter(field.prom_name, field.help)
            ->Set(total.*field.u64);
      } else if (field.u64 != nullptr) {
        registry->GetGauge(field.prom_name, field.help)
            ->Set(static_cast<double>(total.*field.u64));
      } else {
        registry->GetGauge(field.prom_name, field.help)->Set(total.*field.f64);
      }
    }
  }
  if (!optimized_ || ir_ == nullptr) return;

  const opt::OptStats& stats = ir_->stats;
  registry->GetGauge("cep_opt_queries", "Queries registered at Optimize()")
      ->Set(static_cast<double>(names_.size()));
  registry
      ->GetGauge("cep_opt_engines",
                 "Physical engines after shared-prefix merging")
      ->Set(static_cast<double>(engines_.size()));
  registry
      ->GetCounter("cep_opt_queries_merged_total",
                   "Queries folded into an identical leader's engine")
      ->Set(stats.queries_merged);
  registry
      ->GetCounter("cep_opt_states_eliminated_total",
                   "NFA states removed by dead-state elimination")
      ->Set(stats.states_eliminated);
  registry
      ->GetCounter("cep_opt_edges_eliminated_total",
                   "NFA edges removed by dead-state elimination")
      ->Set(stats.edges_eliminated);
  registry
      ->GetCounter("cep_opt_preds_folded_total",
                   "Constant predicates folded away")
      ->Set(stats.preds_folded);
  registry
      ->GetGauge("cep_opt_shared_preds",
                 "Unique predicates in the shared table")
      ->Set(static_cast<double>(ir_->preds.size()));
  registry
      ->GetCounter("cep_opt_preds_interned_total",
                   "Edge predicates offered to the shared table")
      ->Set(stats.preds_interned);
  registry
      ->GetCounter("cep_opt_preds_deduped_total",
                   "Interned predicates that hit an existing entry")
      ->Set(stats.preds_deduped);
  registry
      ->GetCounter("cep_opt_shared_pred_evals_total",
                   "Shared-predicate evaluations performed before fan-out")
      ->Set(ir_->preds.evals_done());
  uint64_t skips = 0;
  for (const auto& engine : engines_) skips += engine->shared_skips();
  registry
      ->GetCounter("cep_opt_engine_skips_total",
                   "Events skipped by engines via shared verdicts")
      ->Set(skips);
  registry
      ->GetCounter("cep_opt_events_prefiltered_total",
                   "Events provably inert for every registered query")
      ->Set(opt_events_prefiltered_);
  registry
      ->GetGauge("cep_opt_prefilter_safe",
                 "1 when the ingestion prefilter may drop events")
      ->Set(stats.prefilter_safe ? 1.0 : 0.0);
  registry
      ->GetGauge("cep_opt_prefilter_droppable_types",
                 "Event types the prefilter can decide from the event alone")
      ->Set(static_cast<double>(stats.prefilter_droppable_types));
  uint64_t runs_shared = 0;
  for (size_t i = 0; i < names_.size(); ++i) {
    if (ir_->units[i].leader != i) {
      runs_shared +=
          engines_[query_to_engine_[i]]->metrics().runs_created;
    }
  }
  registry
      ->GetCounter("cep_opt_runs_shared_total",
                   "Leader runs also servicing a merged member query")
      ->Set(runs_shared);
}

void MultiEngine::EnableParallel(size_t threads) {
  pool_ = threads > 1 ? std::make_unique<ThreadPool>(threads) : nullptr;
  for (auto& engine : engines_) engine->SetThreadPool(pool_.get());
}

template <typename Fn>
Status MultiEngine::ForEachEngine(Fn&& fn) {
  if (pool_ == nullptr || engines_.size() < 2) {
    for (size_t i = 0; i < engines_.size(); ++i) {
      CEP_RETURN_NOT_OK(fn(i));
    }
    return Status::OK();
  }
  statuses_.assign(engines_.size(), Status::OK());
  pool_->ParallelFor(engines_.size(),
                     [&](size_t i) { statuses_[i] = fn(i); });
  for (Status& status : statuses_) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

Status MultiEngine::ProcessEvent(const EventPtr& event) {
  PrepareEvent(event);
  return ForEachEngine(
      [&](size_t i) { return engines_[i]->ProcessEvent(event); });
}

Status MultiEngine::OfferEvent(const EventPtr& event) {
  PrepareEvent(event);
  return ForEachEngine(
      [&](size_t i) { return engines_[i]->OfferEvent(event); });
}

Status MultiEngine::ProcessBatch(std::span<const EventPtr> events) {
  PrepareBatch(events);
  return ForEachEngine(
      [&](size_t i) { return engines_[i]->ProcessBatch(events); });
}

Status MultiEngine::ProcessStream(EventStream* stream, size_t batch_size) {
  if (batch_size <= 1) {
    while (EventPtr event = stream->Next()) {
      CEP_RETURN_NOT_OK(OfferEvent(event));
    }
    return Status::OK();
  }
  std::vector<EventPtr> batch;
  batch.reserve(batch_size);
  for (;;) {
    batch.clear();
    while (batch.size() < batch_size) {
      EventPtr event = stream->Next();
      if (event == nullptr) break;
      batch.push_back(std::move(event));
    }
    if (batch.empty()) return Status::OK();
    CEP_RETURN_NOT_OK(ProcessBatch(batch));
  }
}

EngineMetrics MultiEngine::AggregateMetrics() const {
  EngineMetrics total;
  for (const auto& engine : engines_) {
    total.Add(engine->metrics());
    // Every engine sees the same stream: report it once, not per query.
    total.events_processed = engine->metrics().events_processed;
  }
  return total;
}

size_t MultiEngine::TotalRuns() const {
  size_t total = 0;
  for (const auto& engine : engines_) total += engine->num_runs();
  return total;
}

Result<std::string> MultiEngine::SerializeSnapshot() {
  ckpt::SnapshotBuilder builder(stream_offset());
  if (!optimized_) {
    for (size_t i = 0; i < engines_.size(); ++i) {
      CEP_ASSIGN_OR_RETURN(std::string blob, engines_[i]->SerializeSnapshot());
      builder.AddSection(StrFormat("query.%zu", i), blob);
    }
    return builder.Finish();
  }
  // Optimized layout: one section per *physical* engine plus the optimizer's
  // own component section (digest + cross-engine counters).
  for (size_t k = 0; k < engines_.size(); ++k) {
    CEP_ASSIGN_OR_RETURN(std::string blob, engines_[k]->SerializeSnapshot());
    builder.AddSection(StrFormat("engine.%zu", k), blob);
  }
  ckpt::SnapshotBuilder inner(stream_offset());
  CEP_RETURN_NOT_OK(inner.AddComponents(opt_components()));
  builder.AddSection("opt", inner.Finish());
  return builder.Finish();
}

Status MultiEngine::RestoreFromSnapshot(std::string_view bytes) {
  CEP_ASSIGN_OR_RETURN(ckpt::SnapshotView view, ckpt::ParseSnapshot(bytes));
  if (!optimized_) {
    if (view.Find("opt") != nullptr) {
      return Status::InvalidArgument(
          "snapshot was written by an optimized MultiEngine; call Optimize() "
          "with the same configuration before restoring");
    }
    if (view.sections.size() != engines_.size()) {
      return Status::NotFound(StrFormat(
          "snapshot holds %zu queries, this MultiEngine has %zu: "
          "configuration mismatch",
          view.sections.size(), engines_.size()));
    }
    for (size_t i = 0; i < engines_.size(); ++i) {
      const std::string name = StrFormat("query.%zu", i);
      const ckpt::SnapshotSection* section = view.Find(name);
      if (section == nullptr) {
        return Status::NotFound("snapshot has no section '" + name +
                                "': configuration mismatch");
      }
      CEP_RETURN_NOT_OK(engines_[i]
                            ->RestoreFromSnapshot(section->payload)
                            .WithContext("restoring " + name + " ('" +
                                         names_[i] + "')"));
    }
    return Status::OK();
  }

  const ckpt::SnapshotSection* opt_section = view.Find("opt");
  if (opt_section == nullptr) {
    return Status::InvalidArgument(
        "snapshot was written by an unoptimized MultiEngine but this one is "
        "optimized: configuration mismatch");
  }
  if (view.sections.size() != engines_.size() + 1) {
    return Status::NotFound(StrFormat(
        "optimized snapshot holds %zu engines, this MultiEngine has %zu: "
        "configuration mismatch",
        view.sections.size() - 1, engines_.size()));
  }
  for (size_t k = 0; k < engines_.size(); ++k) {
    const std::string name = StrFormat("engine.%zu", k);
    const ckpt::SnapshotSection* section = view.Find(name);
    if (section == nullptr) {
      return Status::NotFound("snapshot has no section '" + name +
                              "': configuration mismatch");
    }
    CEP_RETURN_NOT_OK(engines_[k]
                          ->RestoreFromSnapshot(section->payload)
                          .WithContext("restoring " + name));
  }
  CEP_ASSIGN_OR_RETURN(ckpt::SnapshotView inner,
                       ckpt::ParseSnapshot(opt_section->payload));
  return ckpt::RestoreComponents(inner, opt_components())
      .WithContext("restoring optimizer state");
}

Status MultiEngine::RestoreFromFile(const std::string& path) {
  std::string file = path;
  struct stat file_stat;
  if (::stat(path.c_str(), &file_stat) == 0 && S_ISDIR(file_stat.st_mode)) {
    CEP_ASSIGN_OR_RETURN(file, ckpt::CheckpointManager::FindLatest(path));
  }
  CEP_ASSIGN_OR_RETURN(std::string bytes, ckpt::ReadFileBytes(file));
  return RestoreFromSnapshot(bytes).WithContext("restoring from '" + file +
                                                "'");
}

uint64_t MultiEngine::stream_offset() const {
  return engines_.empty() ? 0 : engines_.front()->stream_offset();
}

}  // namespace cep
