#include "engine/multi.h"

namespace cep {

size_t MultiEngine::AddQuery(NfaPtr nfa, EngineOptions options,
                             ShedderPtr shedder, std::string name) {
  if (name.empty()) name = nfa->query().name;
  engines_.push_back(
      std::make_unique<Engine>(std::move(nfa), options, std::move(shedder)));
  names_.push_back(std::move(name));
  return engines_.size() - 1;
}

Status MultiEngine::ProcessEvent(const EventPtr& event) {
  for (auto& engine : engines_) {
    CEP_RETURN_NOT_OK(engine->ProcessEvent(event));
  }
  return Status::OK();
}

Status MultiEngine::OfferEvent(const EventPtr& event) {
  for (auto& engine : engines_) {
    CEP_RETURN_NOT_OK(engine->OfferEvent(event));
  }
  return Status::OK();
}

Status MultiEngine::ProcessStream(EventStream* stream) {
  while (EventPtr event = stream->Next()) {
    CEP_RETURN_NOT_OK(OfferEvent(event));
  }
  return Status::OK();
}

EngineMetrics MultiEngine::AggregateMetrics() const {
  EngineMetrics total;
  for (const auto& engine : engines_) {
    const EngineMetrics& m = engine->metrics();
    total.events_processed = engine->metrics().events_processed;  // same stream
    total.events_dropped += m.events_dropped;
    total.runs_created += m.runs_created;
    total.runs_extended += m.runs_extended;
    total.runs_expired += m.runs_expired;
    total.runs_killed += m.runs_killed;
    total.runs_shed += m.runs_shed;
    total.shed_triggers += m.shed_triggers;
    total.matches_emitted += m.matches_emitted;
    total.edge_evaluations += m.edge_evaluations;
    total.peak_runs += m.peak_runs;
    total.busy_micros += m.busy_micros;
    total.quarantined_events += m.quarantined_events;
    total.degradation_ups += m.degradation_ups;
    total.degradation_downs += m.degradation_downs;
    total.bypassed_spawns += m.bypassed_spawns;
    total.emergency_input_drops += m.emergency_input_drops;
    total.peak_run_bytes += m.peak_run_bytes;
    total.reorder_late_dropped += m.reorder_late_dropped;
    total.reorder_buffered_peak += m.reorder_buffered_peak;
  }
  return total;
}

size_t MultiEngine::TotalRuns() const {
  size_t total = 0;
  for (const auto& engine : engines_) total += engine->num_runs();
  return total;
}

}  // namespace cep
