#include "engine/multi.h"

#include <sys/stat.h>

#include "ckpt/manager.h"
#include "ckpt/snapshot.h"
#include "common/string_util.h"

namespace cep {

size_t MultiEngine::AddQuery(NfaPtr nfa, EngineOptions options,
                             ShedderPtr shedder, std::string name) {
  if (name.empty()) name = nfa->query().name;
  engines_.push_back(
      std::make_unique<Engine>(std::move(nfa), options, std::move(shedder)));
  if (pool_ != nullptr) engines_.back()->SetThreadPool(pool_.get());
  Engine* engine = engines_.back().get();
  engine->SetObsId(static_cast<uint32_t>(engines_.size() - 1));
  engine->AttachAuditLog(audit_log_);
  engine->AttachTracer(tracer_);
  names_.push_back(std::move(name));
  return engines_.size() - 1;
}

void MultiEngine::AttachAuditLog(obs::ShedAuditLog* log) {
  audit_log_ = log;
  for (auto& engine : engines_) engine->AttachAuditLog(log);
}

void MultiEngine::AttachTracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  for (auto& engine : engines_) engine->AttachTracer(tracer);
}

void MultiEngine::ExportMetrics(obs::Registry* registry) const {
  for (size_t i = 0; i < engines_.size(); ++i) {
    engines_[i]->ExportMetrics(registry, {{"query", names_[i]}});
  }
  if (engines_.size() == 1) return;  // the labelled export says it all
  // Unlabelled aggregate: counter fields only (histograms merge poorly with
  // snapshot semantics, and per-query is the interesting view anyway).
  const EngineMetrics total = AggregateMetrics();
  size_t count = 0;
  const EngineMetricField* fields = EngineMetricFields(&count);
  for (size_t i = 0; i < count; ++i) {
    const EngineMetricField& field = fields[i];
    if (field.u64 != nullptr && field.monotonic) {
      registry->GetCounter(field.prom_name, field.help)->Set(total.*field.u64);
    } else if (field.u64 != nullptr) {
      registry->GetGauge(field.prom_name, field.help)
          ->Set(static_cast<double>(total.*field.u64));
    } else {
      registry->GetGauge(field.prom_name, field.help)->Set(total.*field.f64);
    }
  }
}

void MultiEngine::EnableParallel(size_t threads) {
  pool_ = threads > 1 ? std::make_unique<ThreadPool>(threads) : nullptr;
  for (auto& engine : engines_) engine->SetThreadPool(pool_.get());
}

template <typename Fn>
Status MultiEngine::ForEachEngine(Fn&& fn) {
  if (pool_ == nullptr || engines_.size() < 2) {
    for (size_t i = 0; i < engines_.size(); ++i) {
      CEP_RETURN_NOT_OK(fn(i));
    }
    return Status::OK();
  }
  statuses_.assign(engines_.size(), Status::OK());
  pool_->ParallelFor(engines_.size(),
                     [&](size_t i) { statuses_[i] = fn(i); });
  for (Status& status : statuses_) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

Status MultiEngine::ProcessEvent(const EventPtr& event) {
  return ForEachEngine(
      [&](size_t i) { return engines_[i]->ProcessEvent(event); });
}

Status MultiEngine::OfferEvent(const EventPtr& event) {
  return ForEachEngine(
      [&](size_t i) { return engines_[i]->OfferEvent(event); });
}

Status MultiEngine::ProcessBatch(std::span<const EventPtr> events) {
  return ForEachEngine(
      [&](size_t i) { return engines_[i]->ProcessBatch(events); });
}

Status MultiEngine::ProcessStream(EventStream* stream, size_t batch_size) {
  if (batch_size <= 1) {
    while (EventPtr event = stream->Next()) {
      CEP_RETURN_NOT_OK(OfferEvent(event));
    }
    return Status::OK();
  }
  std::vector<EventPtr> batch;
  batch.reserve(batch_size);
  for (;;) {
    batch.clear();
    while (batch.size() < batch_size) {
      EventPtr event = stream->Next();
      if (event == nullptr) break;
      batch.push_back(std::move(event));
    }
    if (batch.empty()) return Status::OK();
    CEP_RETURN_NOT_OK(ProcessBatch(batch));
  }
}

EngineMetrics MultiEngine::AggregateMetrics() const {
  EngineMetrics total;
  for (const auto& engine : engines_) {
    total.Add(engine->metrics());
    // Every engine sees the same stream: report it once, not per query.
    total.events_processed = engine->metrics().events_processed;
  }
  return total;
}

size_t MultiEngine::TotalRuns() const {
  size_t total = 0;
  for (const auto& engine : engines_) total += engine->num_runs();
  return total;
}

Result<std::string> MultiEngine::SerializeSnapshot() {
  ckpt::SnapshotBuilder builder(stream_offset());
  for (size_t i = 0; i < engines_.size(); ++i) {
    CEP_ASSIGN_OR_RETURN(std::string blob, engines_[i]->SerializeSnapshot());
    builder.AddSection(StrFormat("query.%zu", i), blob);
  }
  return builder.Finish();
}

Status MultiEngine::RestoreFromSnapshot(std::string_view bytes) {
  CEP_ASSIGN_OR_RETURN(ckpt::SnapshotView view, ckpt::ParseSnapshot(bytes));
  if (view.sections.size() != engines_.size()) {
    return Status::NotFound(StrFormat(
        "snapshot holds %zu queries, this MultiEngine has %zu: "
        "configuration mismatch",
        view.sections.size(), engines_.size()));
  }
  for (size_t i = 0; i < engines_.size(); ++i) {
    const std::string name = StrFormat("query.%zu", i);
    const ckpt::SnapshotSection* section = view.Find(name);
    if (section == nullptr) {
      return Status::NotFound("snapshot has no section '" + name +
                              "': configuration mismatch");
    }
    CEP_RETURN_NOT_OK(engines_[i]
                          ->RestoreFromSnapshot(section->payload)
                          .WithContext("restoring " + name + " ('" +
                                       names_[i] + "')"));
  }
  return Status::OK();
}

Status MultiEngine::RestoreFromFile(const std::string& path) {
  std::string file = path;
  struct stat file_stat;
  if (::stat(path.c_str(), &file_stat) == 0 && S_ISDIR(file_stat.st_mode)) {
    CEP_ASSIGN_OR_RETURN(file, ckpt::CheckpointManager::FindLatest(path));
  }
  CEP_ASSIGN_OR_RETURN(std::string bytes, ckpt::ReadFileBytes(file));
  return RestoreFromSnapshot(bytes).WithContext("restoring from '" + file +
                                                "'");
}

uint64_t MultiEngine::stream_offset() const {
  return engines_.empty() ? 0 : engines_.front()->stream_offset();
}

}  // namespace cep
