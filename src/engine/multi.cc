#include "engine/multi.h"

namespace cep {

size_t MultiEngine::AddQuery(NfaPtr nfa, EngineOptions options,
                             ShedderPtr shedder, std::string name) {
  if (name.empty()) name = nfa->query().name;
  engines_.push_back(
      std::make_unique<Engine>(std::move(nfa), options, std::move(shedder)));
  if (pool_ != nullptr) engines_.back()->SetThreadPool(pool_.get());
  names_.push_back(std::move(name));
  return engines_.size() - 1;
}

void MultiEngine::EnableParallel(size_t threads) {
  pool_ = threads > 1 ? std::make_unique<ThreadPool>(threads) : nullptr;
  for (auto& engine : engines_) engine->SetThreadPool(pool_.get());
}

template <typename Fn>
Status MultiEngine::ForEachEngine(Fn&& fn) {
  if (pool_ == nullptr || engines_.size() < 2) {
    for (size_t i = 0; i < engines_.size(); ++i) {
      CEP_RETURN_NOT_OK(fn(i));
    }
    return Status::OK();
  }
  statuses_.assign(engines_.size(), Status::OK());
  pool_->ParallelFor(engines_.size(),
                     [&](size_t i) { statuses_[i] = fn(i); });
  for (Status& status : statuses_) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

Status MultiEngine::ProcessEvent(const EventPtr& event) {
  return ForEachEngine(
      [&](size_t i) { return engines_[i]->ProcessEvent(event); });
}

Status MultiEngine::OfferEvent(const EventPtr& event) {
  return ForEachEngine(
      [&](size_t i) { return engines_[i]->OfferEvent(event); });
}

Status MultiEngine::ProcessBatch(std::span<const EventPtr> events) {
  return ForEachEngine(
      [&](size_t i) { return engines_[i]->ProcessBatch(events); });
}

Status MultiEngine::ProcessStream(EventStream* stream, size_t batch_size) {
  if (batch_size <= 1) {
    while (EventPtr event = stream->Next()) {
      CEP_RETURN_NOT_OK(OfferEvent(event));
    }
    return Status::OK();
  }
  std::vector<EventPtr> batch;
  batch.reserve(batch_size);
  for (;;) {
    batch.clear();
    while (batch.size() < batch_size) {
      EventPtr event = stream->Next();
      if (event == nullptr) break;
      batch.push_back(std::move(event));
    }
    if (batch.empty()) return Status::OK();
    CEP_RETURN_NOT_OK(ProcessBatch(batch));
  }
}

EngineMetrics MultiEngine::AggregateMetrics() const {
  EngineMetrics total;
  for (const auto& engine : engines_) {
    const EngineMetrics& m = engine->metrics();
    total.events_processed = engine->metrics().events_processed;  // same stream
    total.events_dropped += m.events_dropped;
    total.runs_created += m.runs_created;
    total.runs_extended += m.runs_extended;
    total.runs_expired += m.runs_expired;
    total.runs_killed += m.runs_killed;
    total.runs_shed += m.runs_shed;
    total.shed_triggers += m.shed_triggers;
    total.matches_emitted += m.matches_emitted;
    total.edge_evaluations += m.edge_evaluations;
    total.peak_runs += m.peak_runs;
    total.busy_micros += m.busy_micros;
    total.quarantined_events += m.quarantined_events;
    total.degradation_ups += m.degradation_ups;
    total.degradation_downs += m.degradation_downs;
    total.bypassed_spawns += m.bypassed_spawns;
    total.emergency_input_drops += m.emergency_input_drops;
    total.peak_run_bytes += m.peak_run_bytes;
    total.reorder_late_dropped += m.reorder_late_dropped;
    total.reorder_buffered_peak += m.reorder_buffered_peak;
    total.parallel_events += m.parallel_events;
    total.arena_bytes_reserved += m.arena_bytes_reserved;
  }
  return total;
}

size_t MultiEngine::TotalRuns() const {
  size_t total = 0;
  for (const auto& engine : engines_) total += engine->num_runs();
  return total;
}

}  // namespace cep
