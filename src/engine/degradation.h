#ifndef CEPSHED_ENGINE_DEGRADATION_H_
#define CEPSHED_ENGINE_DEGRADATION_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "ckpt/state_component.h"
#include "common/status.h"
#include "engine/options.h"

namespace cep {

/// \brief Drives the engine through an explicit overload-degradation ladder.
///
/// The paper's controller has a single defense — score partial matches and
/// shed the worst. A production engine facing bursts, poisoned events, and
/// memory pressure needs a *composition* of defenses, engaged progressively
/// and released conservatively:
///
///   kHealthy    all defenses off; the engine runs exhaustively.
///   kShedding   µ(t) passed θ: state-based shedding (the paper's mechanism)
///               is armed and fires on the usual trigger/cooldown schedule.
///   kEmergency  overload persists or the run-set byte budget is blown:
///               input shedding engages in front of the automaton and the
///               shed amount switches to the adaptive (overshoot-scaled)
///               fraction.
///   kBypass     last resort — µ(t) far beyond θ, the byte budget is
///               exceeded twice over, or a poison streak is aborting event
///               processing: new run creation is suppressed entirely while
///               existing runs keep draining (matches in flight still
///               complete; recall for *new* patterns is sacrificed).
///
/// Escalation is immediate (a burst must be met now); de-escalation steps
/// down one level at a time, only after `cooldown_events` at the current
/// level *and* only once the driving signal has fallen below the entry
/// threshold scaled by `hysteresis` — the classic dual-threshold scheme that
/// keeps the controller from oscillating at a level boundary.
class DegradationController : public ckpt::StateComponent {
 public:
  explicit DegradationController(DegradationOptions options);

  /// Advances the controller by one event.
  ///
  /// `overload_ratio` is µ(t)/θ (0 when θ is unset), `run_bytes` the
  /// engine's current run-set byte estimate, and `error_streak` the number
  /// of consecutive quarantined processing failures. Returns the level the
  /// engine must operate at for this event.
  DegradationLevel Update(double overload_ratio, size_t run_bytes,
                          size_t error_streak);

  DegradationLevel level() const { return level_; }

  /// Upward / downward level *steps* (a two-level jump counts twice).
  uint64_t ups() const { return ups_; }
  uint64_t downs() const { return downs_; }

  /// Times the ladder entered `level` from below.
  uint64_t entries(DegradationLevel level) const {
    return entries_[static_cast<size_t>(level)];
  }

  /// Events spent at the current level since the last transition.
  size_t events_at_level() const { return events_at_level_; }

  std::string ToString() const;

  /// Checkpoint codec: the ladder position, the cooldown clock, and the
  /// transition counters. Options are configuration, not state, and are not
  /// serialized.
  Status SerializeTo(ckpt::Sink& sink) const override;
  Status RestoreFrom(ckpt::Source& source) override;

 private:
  /// Highest level demanded by any driving signal, ignoring hysteresis.
  DegradationLevel TargetLevel(double overload_ratio, size_t run_bytes,
                               size_t error_streak) const;

  /// Entry threshold (as a µ/θ ratio) of `level`.
  double EnterRatio(DegradationLevel level) const;

  DegradationOptions options_;
  DegradationLevel level_ = DegradationLevel::kHealthy;
  size_t events_at_level_ = 0;
  uint64_t ups_ = 0;
  uint64_t downs_ = 0;
  uint64_t entries_[4] = {0, 0, 0, 0};
};

}  // namespace cep

#endif  // CEPSHED_ENGINE_DEGRADATION_H_
