#include "engine/match.h"

#include "common/hash.h"
#include "common/string_util.h"

namespace cep {

uint64_t MatchFingerprint(const std::vector<std::vector<EventPtr>>& bindings) {
  uint64_t h = 0x51ed270b7a03f2ULL;
  for (size_t v = 0; v < bindings.size(); ++v) {
    h = HashCombine(h, 0xa11ce + v);
    for (const auto& e : bindings[v]) {
      h = HashCombine(h, e->sequence());
    }
  }
  return h;
}

std::string Match::ToString(const ParsedQuery& query) const {
  std::string out =
      StrFormat("match#%llu [%lld..%lld] <",
                static_cast<unsigned long long>(id),
                static_cast<long long>(first_ts), static_cast<long long>(last_ts));
  bool first = true;
  for (size_t v = 0; v < bindings.size(); ++v) {
    for (const auto& e : bindings[v]) {
      if (!first) out += ", ";
      first = false;
      out += query.pattern[v].name + ":" + std::to_string(e->sequence());
    }
  }
  out += ">";
  return out;
}

}  // namespace cep
