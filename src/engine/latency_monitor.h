#ifndef CEPSHED_ENGINE_LATENCY_MONITOR_H_
#define CEPSHED_ENGINE_LATENCY_MONITOR_H_

#include <cstdint>
#include <memory>

#include "ckpt/state_component.h"
#include "common/status.h"
#include "common/time.h"

namespace cep {

/// \brief Estimates µ(t), the observed per-event processing latency in
/// microseconds over a fixed-size measurement interval (paper §III).
///
/// The engine reports each event's processing cost; CurrentLatencyMicros()
/// is compared against the threshold θ to detect overload.
///
/// Monitors are StateComponents: a snapshot captures the sample ring (and,
/// for the queueing monitor, the server clock) so a restored engine sees the
/// same µ(t) trajectory — and thus makes the same shed decisions — as the
/// uninterrupted run. Each monitor writes a kind tag so restoring into a
/// differently-configured engine fails loudly instead of silently skewing.
class LatencyMonitor : public ckpt::StateComponent {
 public:
  /// Records one processed event: its stream timestamp, `micros` of
  /// wall-clock processing time, and `ops` edge evaluations performed.
  virtual void Record(Timestamp event_ts, double micros, uint64_t ops) = 0;

  /// Current latency estimate µ(t).
  virtual double CurrentLatencyMicros() const = 0;

  virtual void Reset() = 0;
};

/// \brief Sliding-mean monitor over the last `window_events` wall-clock
/// measurements. Non-deterministic across machines — used for throughput
/// experiments.
class WallClockLatencyMonitor final : public LatencyMonitor {
 public:
  explicit WallClockLatencyMonitor(size_t window_events);

  void Record(Timestamp event_ts, double micros, uint64_t ops) override;
  double CurrentLatencyMicros() const override;
  void Reset() override;

  Status SerializeTo(ckpt::Sink& sink) const override;
  Status RestoreFrom(ckpt::Source& source) override;

 private:
  size_t window_events_;
  // Ring buffer of recent measurements.
  std::unique_ptr<double[]> samples_;
  size_t next_ = 0;
  size_t count_ = 0;
  double sum_ = 0;
};

/// \brief Deterministic monitor: latency proxy = ops × ns_per_op. Identical
/// results on every machine and run, which is what the accuracy experiments
/// use (see DESIGN.md substitution #3).
class VirtualCostLatencyMonitor final : public LatencyMonitor {
 public:
  VirtualCostLatencyMonitor(size_t window_events, double ns_per_op);

  void Record(Timestamp event_ts, double micros, uint64_t ops) override;
  double CurrentLatencyMicros() const override;
  void Reset() override;

  double ns_per_op() const { return ns_per_op_; }

  Status SerializeTo(ckpt::Sink& sink) const override;
  Status RestoreFrom(ckpt::Source& source) override;

 private:
  size_t window_events_;
  double ns_per_op_;
  std::unique_ptr<double[]> samples_;
  size_t next_ = 0;
  size_t count_ = 0;
  double sum_ = 0;
};

/// \brief Deterministic single-server queueing simulation: the latency the
/// paper actually talks about — the delay between an event's *arrival* and
/// the completion of its processing, including the time it queued behind
/// earlier events.
///
/// Arrival times derive from stream timestamps compressed by
/// `stream_micros_per_arrival_micro` (how many stream-time microseconds map
/// to one arrival-clock microsecond); service time per event is
/// ops × ns_per_op. When the offered load exceeds the service rate the
/// queue — and thus µ(t) — grows without bound until state is shed, which
/// is precisely the feedback loop of the paper's §III model.
class QueueingLatencyMonitor final : public LatencyMonitor {
 public:
  QueueingLatencyMonitor(size_t window_events, double ns_per_op,
                         double stream_micros_per_arrival_micro);

  void Record(Timestamp event_ts, double micros, uint64_t ops) override;
  double CurrentLatencyMicros() const override;
  void Reset() override;

  /// Arrival-clock time at which the server finishes the last recorded
  /// event (exposed for tests).
  double busy_until_micros() const { return busy_until_; }

  Status SerializeTo(ckpt::Sink& sink) const override;
  Status RestoreFrom(ckpt::Source& source) override;

 private:
  size_t window_events_;
  double ns_per_op_;
  double time_compression_;
  std::unique_ptr<double[]> samples_;
  size_t next_ = 0;
  size_t count_ = 0;
  double sum_ = 0;
  double busy_until_ = 0;  // arrival-clock µs
};

}  // namespace cep

#endif  // CEPSHED_ENGINE_LATENCY_MONITOR_H_
