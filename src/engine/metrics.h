#ifndef CEPSHED_ENGINE_METRICS_H_
#define CEPSHED_ENGINE_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace cep {

/// \brief Counters exposed by the engine after (or during) a run.
///
/// `edge_evaluations` is the engine's unit of work: one candidate event
/// checked against one run edge. The virtual-cost latency monitor converts it
/// into a deterministic latency proxy.
///
/// Every field MUST be listed in kEngineMetricFields (metrics.cc): the field
/// table drives ToString(), MultiEngine aggregation, and the observability
/// registry export, and a reflection test fails the build's test suite when
/// sizeof(EngineMetrics) disagrees with the table — add the field there and
/// everything else follows.
struct EngineMetrics {
  uint64_t events_processed = 0;
  uint64_t events_dropped = 0;   ///< input-based shedding only
  uint64_t runs_created = 0;     ///< new runs started at the initial state
  uint64_t runs_extended = 0;    ///< transitions producing a child run
  uint64_t runs_expired = 0;     ///< window expiry
  uint64_t runs_killed = 0;      ///< negation violations
  uint64_t runs_shed = 0;        ///< removed by load shedding
  /// Runs retired because they emitted at a plain final state (immediate
  /// completions at spawn/extension, in-place completions). Together with
  /// expired/killed/shed/aborted this closes the run-conservation ledger:
  /// Engine::VerifyInvariants checks
  ///   runs_created (+ runs_extended under skip-till-any-match)
  ///     == runs_completed + runs_expired + runs_killed + runs_shed
  ///        + runs_aborted + |R(t)|.
  uint64_t runs_completed = 0;
  /// Half-born runs discarded while recovering from a quarantined
  /// processing error (they were counted created/extended but never joined
  /// or already left R(t)).
  uint64_t runs_aborted = 0;
  uint64_t shed_triggers = 0;    ///< overload episodes
  uint64_t matches_emitted = 0;
  uint64_t edge_evaluations = 0;
  uint64_t peak_runs = 0;        ///< max |R(t)| observed
  double busy_micros = 0;        ///< total processing time (wall or virtual)

  // --- resilience (engine/degradation.h, options.h error budget) -----------
  uint64_t quarantined_events = 0;   ///< poisoned events skipped by the budget
  uint64_t degradation_ups = 0;      ///< ladder escalation steps
  uint64_t degradation_downs = 0;    ///< ladder recovery steps
  uint64_t bypassed_spawns = 0;      ///< events whose run births kBypass ate
  uint64_t emergency_input_drops = 0;  ///< events dropped at kEmergency+
  uint64_t peak_run_bytes = 0;       ///< max run-set byte estimate observed

  // --- ingestion (mirrored from an attached ReorderBuffer) -----------------
  uint64_t reorder_late_dropped = 0;  ///< events behind the watermark
  uint64_t reorder_buffered_peak = 0;  ///< max events held for reordering

  // --- parallel evaluation / run arena (options.h ParallelOptions) ---------
  /// Events whose run set met min_parallel_runs, i.e. whose evaluation phase
  /// is sharded whenever a multi-lane pool is attached. Deliberately
  /// pool-independent so every metric export is byte-identical across
  /// --threads settings (the repo's determinism guarantee extends to
  /// observability output).
  uint64_t parallel_events = 0;
  /// Peak bytes reserved by the run arena's slot blocks (0 with pooling
  /// disabled); compare against peak_run_bytes to validate the degradation
  /// ladder's byte estimate.
  uint64_t arena_bytes_reserved = 0;

  // --- batched predicate evaluation (engine/batch_eval.h) ------------------
  /// Edge evaluations decided by the compiled fast path over the run store's
  /// flat columns (a subset of edge_evaluations; the rest went through the
  /// generic Expr interpreter).
  uint64_t fast_path_edges = 0;
  /// Hot run-side attribute columns the RunStore gathers for this query's
  /// compiled predicates (constant per engine; batch width of the SoA
  /// gather).
  uint64_t hot_attr_slots = 0;

  /// All fields, in declaration order: "name=value name=value ...".
  std::string ToString() const;

  /// Adds every field of `other` into this (field-table driven, so new
  /// fields aggregate automatically). Peak fields are summed too — an upper
  /// bound for concurrent engines; callers wanting a max can post-process.
  void Add(const EngineMetrics& other);
};

/// \brief Reflection entry for one EngineMetrics field. Exactly one of
/// `u64` / `f64` is non-null.
struct EngineMetricField {
  const char* name;  ///< struct field name, used in ToString()
  /// Fully qualified Prometheus family name (counters carry _total).
  const char* prom_name;
  const char* help;
  /// True for monotonically increasing totals; false for peaks/gauges.
  bool monotonic;
  uint64_t EngineMetrics::* u64;
  double EngineMetrics::* f64;
};

/// The field table: one entry per EngineMetrics field, declaration order.
/// `*count` receives the entry count.
const EngineMetricField* EngineMetricFields(size_t* count);

}  // namespace cep

#endif  // CEPSHED_ENGINE_METRICS_H_
