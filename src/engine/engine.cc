#include "engine/engine.h"

#include <sys/stat.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "ckpt/event_codec.h"
#include "ckpt/io.h"
#include "common/string_util.h"
#include "engine/shadow.h"
#include "opt/shared_preds.h"
#include "shedding/adaptive.h"

namespace cep {

namespace {

/// Type id used for RETURN complex events (outside any SchemaRegistry).
constexpr EventTypeId kComplexEventTypeId = kInvalidEventType - 1;

uint64_t TypeBit(EventTypeId type) { return 1ull << (type % 64); }

}  // namespace

const char* SelectionStrategyName(SelectionStrategy strategy) {
  switch (strategy) {
    case SelectionStrategy::kSkipTillAnyMatch:
      return "skip-till-any-match";
    case SelectionStrategy::kSkipTillNextMatch:
      return "skip-till-next-match";
    case SelectionStrategy::kStrictContiguity:
      return "strict-contiguity";
  }
  return "?";
}

// --- checkpoint component adapters ------------------------------------------
//
// These adapters expose composite engine state as StateComponents so
// Engine::SerializeSnapshot is a registry walk. Each owns one snapshot
// section; the byte layouts below are part of the snapshot format
// (docs/CHECKPOINTING.md).

/// Scalar engine state: id counters, ingestion position, shed cooldown, the
/// resilience RNG stream.
class Engine::CoreComponent final : public ckpt::StateComponent {
 public:
  explicit CoreComponent(Engine* engine) : e_(engine) {}

  Status SerializeTo(ckpt::Sink& sink) const override {
    sink.WriteU64(e_->next_run_id_);
    sink.WriteU64(e_->next_match_id_);
    sink.WriteU64(e_->events_since_shed_);
    sink.WriteI64(e_->last_event_ts_);
    sink.WriteU64(e_->approx_run_bytes_);
    sink.WriteU64(e_->consecutive_errors_);
    sink.WriteU64(e_->stream_offset_);
    for (const uint64_t word : e_->resilience_rng_.state()) {
      sink.WriteU64(word);
    }
    return Status::OK();
  }

  Status RestoreFrom(ckpt::Source& source) override {
    CEP_ASSIGN_OR_RETURN(e_->next_run_id_, source.ReadU64());
    CEP_ASSIGN_OR_RETURN(e_->next_match_id_, source.ReadU64());
    CEP_ASSIGN_OR_RETURN(e_->events_since_shed_, source.ReadU64());
    CEP_ASSIGN_OR_RETURN(e_->last_event_ts_, source.ReadI64());
    CEP_ASSIGN_OR_RETURN(uint64_t run_bytes, source.ReadU64());
    e_->approx_run_bytes_ = static_cast<size_t>(run_bytes);
    CEP_ASSIGN_OR_RETURN(uint64_t errors, source.ReadU64());
    e_->consecutive_errors_ = static_cast<size_t>(errors);
    CEP_ASSIGN_OR_RETURN(e_->stream_offset_, source.ReadU64());
    std::array<uint64_t, 4> rng_state;
    for (auto& word : rng_state) {
      CEP_ASSIGN_OR_RETURN(word, source.ReadU64());
    }
    e_->resilience_rng_.set_state(rng_state);
    return Status::OK();
  }

 private:
  Engine* e_;
};

/// The run set R(t): a deduplicating event table followed by every run's
/// bindings encoded as table indices (see Run::SerializeTo).
class Engine::RunSetComponent final : public ckpt::StateComponent {
 public:
  explicit RunSetComponent(Engine* engine) : e_(engine) {}

  Status SerializeTo(ckpt::Sink& sink) const override {
    ckpt::EventTableBuilder table;
    ckpt::Sink runs;
    runs.WriteU64(e_->run_store_.size());
    for (const RunPtr& run : e_->run_store_.slots()) {
      CEP_RETURN_NOT_OK(run->SerializeTo(runs, &table));
    }
    // The table is written first (restore needs it before the runs), but
    // built while serializing the runs — hence the side sink.
    table.Serialize(sink);
    sink.WriteBytes(runs.bytes().data(), runs.size());
    return Status::OK();
  }

  Status RestoreFrom(ckpt::Source& source) override {
    ckpt::EventTable table;
    CEP_RETURN_NOT_OK(table.RestoreFrom(source));
    CEP_ASSIGN_OR_RETURN(uint64_t count, source.ReadU64());
    e_->new_runs_.clear();
    e_->run_store_.Clear();
    for (uint64_t i = 0; i < count; ++i) {
      CEP_ASSIGN_OR_RETURN(
          RunPtr run, Run::RestoreFrom(source, table, e_->arena_ptr()));
      e_->run_store_.Push(std::move(run));
    }
    // Restored chains are rebuilt without cross-run sharing, so the
    // incremental byte ledger is only trustworthy again after the next
    // event's from-scratch recomputation.
    e_->bytes_synced_ = false;
    return Status::OK();
  }

 private:
  Engine* e_;
};

/// Accumulated matches (options.collect_matches): exactly-once resume must
/// re-emit the pre-checkpoint output, so matches are engine state.
class Engine::MatchesComponent final : public ckpt::StateComponent {
 public:
  explicit MatchesComponent(Engine* engine) : e_(engine) {}

  Status SerializeTo(ckpt::Sink& sink) const override {
    ckpt::EventTableBuilder table;
    ckpt::Sink body;
    body.WriteU64(e_->matches_.size());
    for (const Match& match : e_->matches_) {
      body.WriteU64(match.id);
      body.WriteI64(match.first_ts);
      body.WriteI64(match.last_ts);
      body.WriteU64(match.fingerprint);
      body.WriteU32(static_cast<uint32_t>(match.bindings.size()));
      for (const auto& binding : match.bindings) {
        body.WriteU32(static_cast<uint32_t>(binding.size()));
        for (const EventPtr& event : binding) {
          body.WriteU32(table.Intern(event));
        }
      }
      if (match.complex_event != nullptr) {
        body.WriteU8(1);
        body.WriteU32(table.Intern(match.complex_event));
      } else {
        body.WriteU8(0);
      }
    }
    table.Serialize(sink);
    sink.WriteBytes(body.bytes().data(), body.size());
    return Status::OK();
  }

  Status RestoreFrom(ckpt::Source& source) override {
    ckpt::EventTable table;
    CEP_RETURN_NOT_OK(table.RestoreFrom(source));
    CEP_ASSIGN_OR_RETURN(uint64_t count, source.ReadU64());
    e_->matches_.clear();
    e_->matches_.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      Match match;
      CEP_ASSIGN_OR_RETURN(match.id, source.ReadU64());
      CEP_ASSIGN_OR_RETURN(match.first_ts, source.ReadI64());
      CEP_ASSIGN_OR_RETURN(match.last_ts, source.ReadI64());
      CEP_ASSIGN_OR_RETURN(match.fingerprint, source.ReadU64());
      CEP_ASSIGN_OR_RETURN(uint32_t num_vars, source.ReadU32());
      match.bindings.resize(num_vars);
      for (uint32_t v = 0; v < num_vars; ++v) {
        CEP_ASSIGN_OR_RETURN(uint32_t num_events, source.ReadU32());
        match.bindings[v].reserve(num_events);
        for (uint32_t k = 0; k < num_events; ++k) {
          CEP_ASSIGN_OR_RETURN(uint32_t index, source.ReadU32());
          CEP_ASSIGN_OR_RETURN(EventPtr event, table.Get(index));
          match.bindings[v].push_back(std::move(event));
        }
      }
      CEP_ASSIGN_OR_RETURN(uint8_t has_complex, source.ReadU8());
      if (has_complex != 0) {
        CEP_ASSIGN_OR_RETURN(uint32_t index, source.ReadU32());
        CEP_ASSIGN_OR_RETURN(match.complex_event, table.Get(index));
      }
      e_->matches_.push_back(std::move(match));
    }
    return Status::OK();
  }

 private:
  Engine* e_;
};

/// EngineMetrics (field-table driven, so new counters snapshot
/// automatically) plus the latency histograms.
class Engine::MetricsComponent final : public ckpt::StateComponent {
 public:
  explicit MetricsComponent(Engine* engine) : e_(engine) {}

  Status SerializeTo(ckpt::Sink& sink) const override {
    size_t count = 0;
    const EngineMetricField* fields = EngineMetricFields(&count);
    sink.WriteU32(static_cast<uint32_t>(count));
    for (size_t i = 0; i < count; ++i) {
      if (fields[i].u64 != nullptr) {
        sink.WriteU64(e_->metrics_.*fields[i].u64);
      } else {
        sink.WriteDouble(e_->metrics_.*fields[i].f64);
      }
    }
    e_->event_busy_us_.SerializeTo(sink);
    e_->merge_us_.SerializeTo(sink);
    e_->shed_episode_us_.SerializeTo(sink);
    return Status::OK();
  }

  Status RestoreFrom(ckpt::Source& source) override {
    size_t count = 0;
    const EngineMetricField* fields = EngineMetricFields(&count);
    CEP_ASSIGN_OR_RETURN(uint32_t stored, source.ReadU32());
    if (stored != count) {
      return Status::InvalidArgument(StrFormat(
          "snapshot has %u metric fields, this build has %zu", stored, count));
    }
    for (size_t i = 0; i < count; ++i) {
      if (fields[i].u64 != nullptr) {
        CEP_ASSIGN_OR_RETURN(e_->metrics_.*fields[i].u64, source.ReadU64());
      } else {
        CEP_ASSIGN_OR_RETURN(e_->metrics_.*fields[i].f64, source.ReadDouble());
      }
    }
    CEP_RETURN_NOT_OK(e_->event_busy_us_.RestoreFrom(source));
    CEP_RETURN_NOT_OK(e_->merge_us_.RestoreFrom(source));
    CEP_RETURN_NOT_OK(e_->shed_episode_us_.RestoreFrom(source));
    return Status::OK();
  }

 private:
  Engine* e_;
};

Engine::Engine(NfaPtr nfa, EngineOptions options, ShedderPtr shedder)
    : nfa_(std::move(nfa)),
      options_(options),
      shedder_(std::move(shedder)),
      resilience_rng_(options.degradation.seed),
      arena_(options.parallel.arena_block_runs),
      scratch_empty_run_(0, nfa_->analyzed().num_variables(), 0, 0) {
  if (options_.degradation.enabled) {
    degradation_ = std::make_unique<DegradationController>(options_.degradation);
  }
  if (options_.parallel.threads > 1) {
    owned_pool_ = std::make_unique<ThreadPool>(options_.parallel.threads);
    pool_ = owned_pool_.get();
  }
  switch (options_.latency_mode) {
    case LatencyMode::kWallClock:
      latency_monitor_ = std::make_unique<WallClockLatencyMonitor>(
          options_.latency_window_events);
      break;
    case LatencyMode::kQueueSimulation:
      latency_monitor_ = std::make_unique<QueueingLatencyMonitor>(
          options_.latency_window_events, options_.virtual_ns_per_op,
          options_.queue_time_compression);
      break;
    case LatencyMode::kVirtualCost:
      latency_monitor_ = std::make_unique<VirtualCostLatencyMonitor>(
          options_.latency_window_events, options_.virtual_ns_per_op);
      break;
  }
  state_type_masks_.resize(nfa_->num_states(), 0);
  for (const auto& state : nfa_->states()) {
    for (const auto& edge : state.edges) {
      state_type_masks_[state.id] |= TypeBit(edge.event_type);
    }
  }
  batch_plan_.Compile(*nfa_);
  run_store_.SetHotPlan(&batch_plan_.hot_plan());
  metrics_.hot_attr_slots = batch_plan_.hot_plan().size();
  const ReturnSpec& spec = nfa_->query().return_spec;
  if (!spec.empty()) {
    std::vector<AttributeDef> attrs;
    attrs.reserve(spec.items.size());
    for (const auto& item : spec.items) {
      // Output attribute types are determined by the RETURN expressions at
      // match time; kNull here means "dynamically typed".
      attrs.push_back(AttributeDef{item.name, ValueType::kNull});
    }
    output_schema_ =
        std::make_shared<EventSchema>(spec.event_name, std::move(attrs));
  }
  if (shedder_ != nullptr) shedder_->Attach(*nfa_);
  if (options_.quality.slo.enabled) {
    slo_ = std::make_unique<obs::ThetaSloMonitor>(
        options_.quality.slo.windows, options_.quality.slo.budget_fraction);
  }
  if (options_.quality.calibration.enabled) {
    calibration_ = std::make_unique<obs::CalibrationMonitor>(
        options_.quality.calibration.num_buckets);
  }
  if (options_.quality.shadow.enabled()) {
    shadow_ = std::make_unique<ShadowOracle>(nfa_, options_);
  }
  core_component_ = std::make_unique<CoreComponent>(this);
  runs_component_ = std::make_unique<RunSetComponent>(this);
  matches_component_ = std::make_unique<MatchesComponent>(this);
  metrics_component_ = std::make_unique<MetricsComponent>(this);
  if (options_.checkpoint.enabled()) {
    ckpt_manager_ = std::make_unique<ckpt::CheckpointManager>(
        options_.checkpoint.directory, options_.checkpoint.keep);
  }
}

Engine::~Engine() = default;

void Engine::SetThreadPool(ThreadPool* pool) {
  pool_ = pool;
  if (owned_pool_ != nullptr && pool_ != owned_pool_.get()) {
    owned_pool_.reset();
  }
}

Result<bool> Engine::EvalEdge(const Run& run, const Edge& edge,
                              const Event& event) {
  const RunBindingView view(run, edge.var_index, &event);
  for (const Expr* pred : edge.exit_predicates) {
    CEP_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*pred, view));
    if (!pass) return false;
  }
  // Interned (event-only) predicates read the precomputed shared verdict
  // instead of re-interpreting the expression per run. Consulted in edge
  // order, so short-circuiting — including which predicate's error
  // surfaces — is identical to inline evaluation.
  const bool consult = shared_row_ != nullptr &&
                       edge.shared_pred_ids.size() == edge.predicates.size();
  for (size_t j = 0; j < edge.predicates.size(); ++j) {
    if (consult) {
      const int32_t id = edge.shared_pred_ids[j];
      if (id >= 0) {
        const int8_t v = shared_row_->verdicts[id];
        if (v == opt::SharedPredTable::kTrue) continue;
        if (v == opt::SharedPredTable::kFalse) return false;
        if (v == opt::SharedPredTable::kError) {
          return shared_row_->ErrorFor(id);
        }
        // kNotEvaluated (row built for another type); evaluate inline.
      }
    }
    CEP_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*edge.predicates[j], view));
    if (!pass) return false;
  }
  return true;
}

Result<EventPtr> Engine::BuildComplexEvent(const Run& run) {
  const ReturnSpec& spec = nfa_->query().return_spec;
  const RunBindingView view(run);
  std::vector<Value> values;
  values.reserve(spec.items.size());
  for (const auto& item : spec.items) {
    CEP_ASSIGN_OR_RETURN(Value v, item.expr->Eval(view));
    values.push_back(std::move(v));
  }
  return std::make_shared<Event>(kComplexEventTypeId, output_schema_,
                                 run.last_ts(), std::move(values),
                                 next_match_id_);
}

Result<bool> Engine::TryEmit(const Run& run, Timestamp now) {
  const State& state = nfa_->state(run.state());
  const RunBindingView view(run);
  for (const Expr* pred : state.final_predicates) {
    CEP_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*pred, view));
    if (!pass) return false;
  }
  Match match;
  match.id = next_match_id_++;
  match.first_ts = run.start_ts();
  match.last_ts = run.last_ts();
  match.bindings = run.CopyBindings();
  match.fingerprint = MatchFingerprint(match.bindings);
  if (output_schema_ != nullptr) {
    CEP_ASSIGN_OR_RETURN(match.complex_event, BuildComplexEvent(run));
  }
  ++metrics_.matches_emitted;
  if (shedder_ != nullptr) shedder_->OnMatchEmitted(run, now);
  if (shadow_ != nullptr) {
    shadow_->NotePrimaryMatch(match.fingerprint, match.first_ts,
                              match.last_ts);
  }
  if (match_callback_) match_callback_(match);
  if (options_.collect_matches) matches_.push_back(std::move(match));
  return true;
}

void Engine::EvalRunRange(const Event& event, Timestamp now, size_t begin,
                          size_t end, ShardScratch* scratch) {
  const uint64_t ebit = TypeBit(event.type());
  const Duration window = nfa_->window();
  const bool in_place =
      options_.selection != SelectionStrategy::kSkipTillAnyMatch;
  // Hot loop: expiry and state routing read the store's flat columns, and
  // compiled-fast edges evaluate against the gathered HotCell columns — a
  // non-advancing run is decided without ever dereferencing its Run object.
  const int32_t* states = run_store_.states();
  const int64_t* start_ts = run_store_.start_ts();
  for (size_t i = begin; i < end; ++i) {
    RunDecision decision;
    if (now - start_ts[i] > window) {  // Run::Expired over the column
      decision.flags = kDecisionExpired;
      decisions_[i] = decision;
      continue;
    }
    const int32_t st = states[i];
    if ((state_type_masks_[st] & ebit) != 0) {
      const State& state = nfa_->state(st);
      for (size_t e = 0; e < state.edges.size(); ++e) {
        const Edge& edge = state.edges[e];
        if (edge.event_type != event.type()) continue;
        ++decision.ops;
        bool passed;
        const BatchEvalPlan::CompiledEdge& ce = batch_plan_.edge(st, e);
        const FastVerdict verdict = ce.fast
                                        ? batch_plan_.EvalFast(ce, i)
                                        : FastVerdict::kFallback;
        if (verdict != FastVerdict::kFallback) {
          passed = verdict == FastVerdict::kTrue;
          ++decision.fast_ops;
        } else {
          const Result<bool> pass = EvalEdge(*run_store_.at(i), edge, event);
          if (!pass.ok()) {
            // The merge phase aborts the event exactly where the serial loop
            // would have: after this run's earlier fired edges were applied.
            decision.flags |= kDecisionError;
            scratch->errors.emplace_back(i, pass.status());
            break;
          }
          passed = pass.ValueOrDie();
        }
        if (!passed) continue;
        if (edge.kind == EdgeKind::kKill) {
          decision.flags |= kDecisionKilled;
          break;
        }
        scratch->fired.push_back(static_cast<uint16_t>(e));
        ++decision.fired;
        // Greedy strategies apply the first applicable transition in place
        // and stop scanning edges for this run.
        if (in_place) break;
      }
    }
    decisions_[i] = decision;
  }
}

Status Engine::ApplyDecisions(const EventPtr& event, Timestamp now,
                              size_t num_shards, bool track_bytes,
                              size_t* live_bytes, bool* any_dead) {
  const SelectionStrategy sel = options_.selection;
  const bool strict = sel == SelectionStrategy::kStrictContiguity;
  const bool in_place = sel != SelectionStrategy::kSkipTillAnyMatch;
  const size_t n = run_store_.size();
  for (size_t s = 0; s < num_shards; ++s) {
    const ShardScratch& scratch = shard_scratch_[s];
    size_t fired_cursor = 0;
    size_t error_cursor = 0;
    const size_t shard_end = ShardBegin(s + 1, num_shards, n);
    for (size_t i = ShardBegin(s, num_shards, n); i < shard_end; ++i) {
      RunPtr& slot = run_store_.slot(i);
      Run* run = slot.get();
      const RunDecision decision = decisions_[i];
      ops_this_event_ += decision.ops;
      metrics_.fast_path_edges += decision.fast_ops;
      const size_t run_bytes = track_bytes ? run->ApproxBytes() : 0;
      *live_bytes += run_bytes;
      if ((decision.flags & kDecisionExpired) != 0) {
        // A run waiting at a deferred final state (trailing negation) is
        // confirmed by its window closing without a violation: emit now.
        bool emitted = false;
        if (nfa_->state(run->state()).deferred_final) {
          CEP_ASSIGN_OR_RETURN(emitted, TryEmit(*run, now));
        }
        if (shedder_ != nullptr) shedder_->OnRunExpired(*run, now);
        NoteRunOutcome(*run, now, emitted);
        ++metrics_.runs_expired;
        run_store_.Kill(i);
        *live_bytes -= run_bytes;
        *any_dead = true;
        continue;
      }
      const State& state = nfa_->state(run->state());
      for (uint16_t f = 0; f < decision.fired; ++f) {
        const Edge& edge = state.edges[scratch.fired[fired_cursor + f]];
        if (!in_place) {
          // Skip-till-any-match: branch; the original run survives untouched.
          RunPtr child = run->Extend(next_run_id_++, edge.var_index, event,
                                     edge.target, arena_ptr());
          ++metrics_.runs_extended;
          if (shedder_ != nullptr) {
            shedder_->OnRunExtended(run, child.get(), *event, now);
          }
          const State& target = nfa_->state(edge.target);
          bool keep = true;
          if (target.is_final) {
            if (target.deferred_final) {
              // Trailing negation: emission waits for the window to close.
            } else {
              const Result<bool> emitted = TryEmit(*child, now);
              if (!emitted.ok()) {
                // The child was counted in runs_extended but never joins
                // R(t); book the exit so the conservation ledger closes.
                ++metrics_.runs_aborted;
                return emitted.status();
              }
              // A final state with outgoing edges is a trailing Kleene
              // state: the child keeps collecting; a plain final state
              // completes it.
              keep = !target.edges.empty();
            }
          }
          if (keep) {
            new_runs_.push_back(std::move(child));
          } else {
            NoteRunOutcome(*child, now, /*completed=*/true);
            ++metrics_.runs_completed;
          }
        } else {
          run->Bind(edge.var_index, event, edge.target, arena_.cell_pool());
          ++metrics_.runs_extended;
          if (shedder_ != nullptr) {
            shedder_->OnRunExtended(nullptr, run, *event, now);
          }
          const State& target = nfa_->state(edge.target);
          if (target.is_final && !target.deferred_final) {
            CEP_RETURN_NOT_OK(TryEmit(*run, now).status());
            if (target.edges.empty()) {
              NoteRunOutcome(*run, now, /*completed=*/true);
              ++metrics_.runs_completed;
              run_store_.Kill(i);
              *live_bytes -= run_bytes;
              *any_dead = true;
            }
          }
        }
      }
      fired_cursor += decision.fired;
      if (in_place && decision.fired > 0 && slot != nullptr) {
        // The greedy bind mutated the run in place: re-gather its columns
        // and book the growth (run_bytes above was measured pre-mutation).
        run_store_.Refresh(i);
        if (track_bytes) *live_bytes += run->ApproxBytes() - run_bytes;
      }
      if ((decision.flags & kDecisionError) != 0) {
        // Propagate the predicate error recorded for this run, after its
        // earlier fired edges took effect (serial semantics).
        while (error_cursor < scratch.errors.size() &&
               scratch.errors[error_cursor].first != i) {
          ++error_cursor;
        }
        return error_cursor < scratch.errors.size()
                   ? scratch.errors[error_cursor].second
                   : Status::Internal("lost shard evaluation error");
      }
      if ((decision.flags & kDecisionKilled) != 0) {
        NoteRunOutcome(*run, now, /*completed=*/false);
        ++metrics_.runs_killed;
        run_store_.Kill(i);
        *live_bytes -= run_bytes;
        *any_dead = true;
        continue;
      }
      if (strict && decision.fired == 0 && slot != nullptr &&
          !nfa_->state(slot->state()).deferred_final) {
        // Strict contiguity: an event that does not advance the run breaks
        // it.
        NoteRunOutcome(*slot, now, /*completed=*/false);
        ++metrics_.runs_killed;
        run_store_.Kill(i);
        *live_bytes -= run_bytes;
        *any_dead = true;
      }
    }
  }
  return Status::OK();
}

std::pair<bool, uint64_t> Engine::ProbeSkip(const Event& event) const {
  // Only the bare edge-firing pipeline may be elided: every listed feature
  // observes events (or their cost) even when nothing fires.
  if (shared_preds_ == nullptr || shedder_ != nullptr ||
      degradation_ != nullptr || shadow_ != nullptr || tracer_ != nullptr ||
      reorder_buffer_ != nullptr) {
    return {false, 0};
  }
  if (run_store_.size() != 0) return {false, 0};
  if (event.timestamp() < last_event_ts_) return {false, 0};  // error path
  const opt::SharedPredRow* row = shared_preds_->RowFor(&event);
  if (row == nullptr) return {false, 0};
  const State& start = nfa_->state(nfa_->start_state());
  if ((state_type_masks_[start.id] & TypeBit(event.type())) == 0) {
    return {true, 1};  // no edge of this type anywhere near the start state
  }
  uint64_t ops = 1;
  for (const Edge& edge : start.edges) {
    if (edge.kind == EdgeKind::kKill || edge.event_type != event.type()) {
      continue;
    }
    ++ops;  // the spawn loop charges one op per matching edge
    if (edge.predicates.empty() ||
        edge.shared_pred_ids.size() != edge.predicates.size()) {
      return {false, 0};  // edge would fire / verdict not decidable from row
    }
    bool dead = false;
    for (size_t j = 0; j < edge.predicates.size(); ++j) {
      const int32_t id = edge.shared_pred_ids[j];
      if (id < 0) return {false, 0};  // run-context predicate: evaluate fully
      const int8_t v = row->verdicts[id];
      if (v == opt::SharedPredTable::kFalse) {
        dead = true;
        break;
      }
      if (v != opt::SharedPredTable::kTrue) {
        return {false, 0};  // error (must surface) or foreign-type row
      }
    }
    if (!dead) return {false, 0};  // all predicates hold: the edge fires
  }
  return {true, ops};
}

void Engine::NoteSkippedEvent(const EventPtr& event, uint64_t ops) {
  ++shared_skips_;
  last_event_ts_ = event->timestamp();
  ops_this_event_ = ops;
  ++metrics_.events_processed;
  metrics_.edge_evaluations += ops;
  metrics_.arena_bytes_reserved = std::max<uint64_t>(
      metrics_.arena_bytes_reserved, arena_.bytes_reserved());
  // Virtual-cost accounting matches the full pipeline exactly (same ops), so
  // µ(t) and the SLO burn rates are unchanged by skipping; under kWallClock
  // the skipped event just contributes ~0 µs, as it genuinely cost.
  const bool wall = options_.latency_mode == LatencyMode::kWallClock;
  const double busy_added =
      wall ? 0.0
           : static_cast<double>(ops) * options_.virtual_ns_per_op / 1000.0;
  metrics_.busy_micros += busy_added;
  if constexpr (obs::kEnabled) {
    event_busy_us_.Record(busy_added);
  }
  latency_monitor_->Record(event->timestamp(), 0.0, ops);
  NoteSloSample(busy_added);
  ++events_since_shed_;
}

Status Engine::ProcessEvent(const EventPtr& event) {
  if (shared_preds_ != nullptr) {
    const auto [skip, ops] = ProbeSkip(*event);
    if (skip) {
      NoteSkippedEvent(event, ops);
      return Status::OK();
    }
  }
  if (shadow_ == nullptr) return ProcessEventInternal(event);
  const Status status = ProcessEventInternal(event);
  // Drive the oracle only once the event's fate is known, outside the
  // latency measurement: a failed (quarantined) event leaves no trace in
  // shadow state, and shadow work never inflates µ(t).
  if (status.ok()) {
    shadow_->OnEventConsumed(event);
  } else {
    shadow_->DiscardPending();
  }
  return status;
}

Status Engine::ProcessEventInternal(const EventPtr& event) {
  using Clock = std::chrono::steady_clock;
  const bool wall = options_.latency_mode == LatencyMode::kWallClock;
  const Clock::time_point t0 = wall ? Clock::now() : Clock::time_point();
  // Trace timebase: this event's span starts where the busy clock stood
  // before the event was processed.
  const uint64_t busy_start_us = BusyClockMicros();

  // Fetch this event's shared-predicate verdict row once, serially, before
  // the evaluation phase fans out: shards read shared_row_ concurrently.
  shared_row_ = shared_preds_ != nullptr ? shared_preds_->RowFor(event.get())
                                         : nullptr;

  const Timestamp now = event->timestamp();
  if (now < last_event_ts_) {
    return Status::InvalidArgument(StrFormat(
        "event timestamps must be non-decreasing (%lld after %lld)",
        static_cast<long long>(now), static_cast<long long>(last_event_ts_)));
  }
  last_event_ts_ = now;
  ops_this_event_ = 1;

  // Degradation ladder: decide this event's operating level from the last
  // event's µ(t), run-set bytes, and the current poison streak.
  DegradationLevel level = DegradationLevel::kHealthy;
  if (degradation_ != nullptr) {
    const double theta = options_.latency_threshold_micros;
    const double ratio =
        theta > 0 ? latency_monitor_->CurrentLatencyMicros() / theta : 0.0;
    const DegradationLevel prev_level = degradation_->level();
    level = degradation_->Update(ratio, approx_run_bytes_ + external_run_bytes_,
                                 consecutive_errors_);
    metrics_.degradation_ups = degradation_->ups();
    metrics_.degradation_downs = degradation_->downs();
    if constexpr (obs::kEnabled) {
      if (tracer_ != nullptr && level != prev_level) {
        tracer_->Instant(level > prev_level ? "ladder_up" : "ladder_down",
                         busy_start_us, obs_id_ * 4, "level",
                         static_cast<uint64_t>(level));
      }
    }
    if (level >= DegradationLevel::kEmergency &&
        resilience_rng_.NextBernoulli(
            options_.degradation.emergency_drop_probability)) {
      // Emergency input shedding: discard in front of the automaton so the
      // run set stops growing while state shedding catches up.
      ++metrics_.emergency_input_drops;
      ++metrics_.events_dropped;
      latency_monitor_->Record(now, 0.0, 1);
      NoteSloSample(0.0);
      return Status::OK();
    }
  }

  // Input probe: every arriving event is offered to the strategy, which can
  // claim it (drop_event) and/or shed runs pre-emptively in one decision.
  if (shedder_ != nullptr) {
    ShedContext probe{run_store_.slots(), now, /*target=*/0,
                      WantShedScores()};
    probe.event = event.get();
    probe.overloaded = options_.latency_threshold_micros > 0 &&
                       latency_monitor_->CurrentLatencyMicros() >
                           options_.latency_threshold_micros;
    probe.store = &run_store_;
    probe.window = nfa_ != nullptr ? nfa_->window() : 0;
    probe.degradation_level =
        degradation_ != nullptr ? static_cast<int>(level) : -1;
    ShedDecision decision = shedder_->Decide(probe);
    if (!decision.victims.empty()) {
      const size_t applied = ApplyVictims(decision, now);
      if (applied > 0) {
        CompactRuns();
        ++metrics_.shed_triggers;
      }
    }
    if (decision.drop_event) {
      ++metrics_.events_dropped;
      latency_monitor_->Record(now, 0.0, 1);
      NoteSloSample(0.0);
      return Status::OK();
    }
  }

  const uint64_t ebit = TypeBit(event->type());
  const bool track_bytes = degradation_ != nullptr;
  size_t live_bytes = 0;
  bool any_dead = false;

  // Evaluation phase: per-run verdicts, sharded across the pool when R(t)
  // is large enough to amortize the dispatch. Decisions are identical for
  // every shard count, so parallelism never changes results.
  const size_t n = run_store_.size();
  size_t num_shards = 1;
  // Eligibility is pool-independent (the run set alone decides), so the
  // parallel_events metric — and every observability export derived from it
  // — is byte-identical across --threads settings.
  const bool parallel_eligible =
      n > 0 && n >= options_.parallel.min_parallel_runs;
  const bool sharded =
      pool_ != nullptr && pool_->num_threads() > 1 && parallel_eligible;
  if (sharded) {
    num_shards = options_.parallel.shards > 0 ? options_.parallel.shards
                                              : pool_->num_threads();
    num_shards = std::min(num_shards, n);
  }
  if (parallel_eligible) ++metrics_.parallel_events;
  // Encode the candidate's attributes once, serially: every shard's fast
  // edge evaluations read this scratch row concurrently.
  if (n > 0) batch_plan_.BeginEvent(*event, run_store_);
  decisions_.resize(n);
  if (shard_scratch_.size() < num_shards) shard_scratch_.resize(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shard_scratch_[s].fired.clear();
    shard_scratch_[s].errors.clear();
  }
  if (sharded && num_shards > 1) {
    pool_->ParallelFor(num_shards, [&](size_t s) {
      EvalRunRange(*event, now, ShardBegin(s, num_shards, n),
                   ShardBegin(s + 1, num_shards, n), &shard_scratch_[s]);
    });
  } else if (n > 0) {
    EvalRunRange(*event, now, 0, n, &shard_scratch_[0]);
  }

  // Merge phase: serial, in run order — matches, model updates, and
  // shedder bookkeeping replay exactly as the serial engine produced them.
  const uint64_t ops_before_merge = ops_this_event_;
  CEP_RETURN_NOT_OK(ApplyDecisions(event, now, num_shards, track_bytes,
                                   &live_bytes, &any_dead));
  const uint64_t eval_ops = ops_this_event_ - ops_before_merge;

  // Spawn new runs from the initial state. kBypass sacrifices new pattern
  // instances to preserve the ones already in flight.
  const State& start = nfa_->state(nfa_->start_state());
  if ((state_type_masks_[start.id] & ebit) != 0 &&
      level == DegradationLevel::kBypass) {
    ++metrics_.bypassed_spawns;
  } else if ((state_type_masks_[start.id] & ebit) != 0) {
    for (const Edge& edge : start.edges) {
      if (edge.kind == EdgeKind::kKill || edge.event_type != event->type()) {
        continue;
      }
      ++ops_this_event_;
      const RunBindingView view(scratch_empty_run_, edge.var_index,
                                event.get());
      bool pass = true;
      const bool consult =
          shared_row_ != nullptr &&
          edge.shared_pred_ids.size() == edge.predicates.size();
      for (size_t j = 0; j < edge.predicates.size(); ++j) {
        const int32_t id = consult ? edge.shared_pred_ids[j] : -1;
        if (id >= 0) {
          const int8_t v = shared_row_->verdicts[id];
          if (v == opt::SharedPredTable::kTrue) continue;
          if (v == opt::SharedPredTable::kFalse) {
            pass = false;
            break;
          }
          if (v == opt::SharedPredTable::kError) {
            return shared_row_->ErrorFor(id);
          }
        }
        CEP_ASSIGN_OR_RETURN(pass, EvalPredicate(*edge.predicates[j], view));
        if (!pass) break;
      }
      if (!pass) continue;
      RunPtr run = arena_ptr() != nullptr
                       ? arena_.New(next_run_id_++,
                                    nfa_->analyzed().num_variables(),
                                    nfa_->start_state(), now)
                       : MakeRun(next_run_id_++,
                                 nfa_->analyzed().num_variables(),
                                 nfa_->start_state(), now);
      run->Bind(edge.var_index, event, edge.target, arena_.cell_pool());
      ++metrics_.runs_created;
      if (shedder_ != nullptr) shedder_->OnRunCreated(run.get(), *event, now);
      const State& target = nfa_->state(edge.target);
      bool keep = true;
      if (target.is_final) {
        if (!target.deferred_final) {
          const Result<bool> emitted = TryEmit(*run, now);
          if (!emitted.ok()) {
            // Counted in runs_created but never joins R(t).
            ++metrics_.runs_aborted;
            return emitted.status();
          }
          keep = !target.edges.empty();
        }
      }
      if (keep) {
        new_runs_.push_back(std::move(run));
      } else {
        NoteRunOutcome(*run, now, /*completed=*/true);
        ++metrics_.runs_completed;
      }
    }
  }

  if (any_dead) CompactRuns();
  for (auto& run : new_runs_) {
    if (track_bytes) live_bytes += run->ApproxBytes();
    run_store_.Push(std::move(run));
  }
  new_runs_.clear();
  if (track_bytes) {
    approx_run_bytes_ = live_bytes;
    bytes_synced_ = true;
    metrics_.peak_run_bytes =
        std::max<uint64_t>(metrics_.peak_run_bytes, live_bytes);
  }

  ++metrics_.events_processed;
  metrics_.edge_evaluations += ops_this_event_;
  metrics_.peak_runs =
      std::max<uint64_t>(metrics_.peak_runs, run_store_.size());
  metrics_.arena_bytes_reserved = std::max<uint64_t>(
      metrics_.arena_bytes_reserved, arena_.bytes_reserved());

  double micros = 0.0;
  double busy_added = 0.0;
  if (wall) {
    micros = std::chrono::duration<double, std::micro>(Clock::now() - t0)
                 .count();
    busy_added = micros;
  } else {
    busy_added = static_cast<double>(ops_this_event_) *
                 options_.virtual_ns_per_op / 1000.0;
  }
  metrics_.busy_micros += busy_added;
  if constexpr (obs::kEnabled) {
    event_busy_us_.Record(busy_added);
    if (n > 0) {
      // Serial-merge cost proxy: one run-scan per live run. Deterministic
      // (unlike wall time) and proportional to the real merge work.
      merge_us_.Record(static_cast<double>(n) * options_.virtual_ns_per_op /
                       1000.0);
    }
    if (tracer_ != nullptr) {
      const uint32_t lane = obs_id_ * 4;
      const uint64_t dur = static_cast<uint64_t>(busy_added);
      tracer_->Span("event", busy_start_us, dur, lane, "ops", ops_this_event_);
      if (n > 0) {
        const uint64_t eval_dur = static_cast<uint64_t>(
            static_cast<double>(eval_ops) * options_.virtual_ns_per_op /
            1000.0);
        tracer_->Span(parallel_eligible ? "eval_parallel" : "eval",
                      busy_start_us, eval_dur, lane + 1, "runs", n);
        tracer_->Span("merge", busy_start_us + eval_dur,
                      static_cast<uint64_t>(
                          static_cast<double>(n) * options_.virtual_ns_per_op /
                          1000.0),
                      lane + 2, "runs", n);
      }
    }
  }
  latency_monitor_->Record(now, micros, ops_this_event_);
  NoteSloSample(busy_added);
  ++events_since_shed_;

  if (shedder_ != nullptr && !run_store_.empty()) {
    const double latency = latency_monitor_->CurrentLatencyMicros();
    bool latency_overload =
        options_.latency_threshold_micros > 0 &&
        latency > options_.latency_threshold_micros &&
        events_since_shed_ >= options_.shed_cooldown_events;
    // With the ladder enabled, state shedding is a *defense level*: it only
    // fires once the controller has escalated to kShedding. The max_runs
    // safety valve stays unconditional.
    if (degradation_ != nullptr &&
        degradation_->level() < DegradationLevel::kShedding) {
      latency_overload = false;
    }
    const bool cap_overload =
        options_.max_runs > 0 && run_store_.size() > options_.max_runs;
    if (latency_overload || cap_overload) TriggerShed(now, latency);
  }
  if (reorder_buffer_ != nullptr) SyncReorderMetrics();
#ifndef NDEBUG
  {
    // Merge barrier: new_runs_ is folded into R(t) and shedding has run, so
    // the conservation ledger must balance here on every event.
    const Status invariants = VerifyInvariants();
    if (!invariants.ok()) {
      std::fprintf(stderr, "Engine::VerifyInvariants failed: %s\n",
                   invariants.ToString().c_str());
      std::abort();
    }
  }
#endif
  return Status::OK();
}

Status Engine::OfferEvent(const EventPtr& event) {
  Status status = ProcessEvent(event);
  if (status.ok()) {
    consecutive_errors_ = 0;
  } else if (!options_.error_budget.enabled) {
    return status;
  } else {
    ++consecutive_errors_;
    ++metrics_.quarantined_events;
    RecoverFromError();
    if (consecutive_errors_ >= options_.error_budget.max_consecutive_errors) {
      return status.WithContext(
          StrFormat("error budget exhausted (%zu consecutive failures)",
                    consecutive_errors_));
    }
  }
  // Every consumed event (including quarantined ones) advances the stream
  // position: on restore the CLI skips exactly stream_offset() events, so
  // the offset must count consumption, not successful evaluation.
  ++stream_offset_;
  if (ckpt_manager_ != nullptr &&
      stream_offset_ % options_.checkpoint.interval_events == 0) {
    CEP_RETURN_NOT_OK(MaybeCheckpoint());
  }
  return Status::OK();
}

Status Engine::ProcessBatch(std::span<const EventPtr> events) {
  const uint64_t batch_start_us = BusyClockMicros();
  for (const EventPtr& event : events) {
    CEP_RETURN_NOT_OK(OfferEvent(event));
  }
  if constexpr (obs::kEnabled) {
    if (tracer_ != nullptr && !events.empty()) {
      tracer_->Span("ingest_batch", batch_start_us,
                    BusyClockMicros() - batch_start_us, obs_id_ * 4, "events",
                    events.size());
    }
  }
  return Status::OK();
}

Status Engine::ProcessStream(EventStream* stream, size_t batch_size) {
  if (batch_size <= 1) {
    while (EventPtr event = stream->Next()) {
      CEP_RETURN_NOT_OK(OfferEvent(event));
    }
    return Status::OK();
  }
  std::vector<EventPtr> batch;
  batch.reserve(batch_size);
  for (;;) {
    batch.clear();
    while (batch.size() < batch_size) {
      EventPtr event = stream->Next();
      if (event == nullptr) break;
      batch.push_back(std::move(event));
    }
    if (batch.empty()) return Status::OK();
    CEP_RETURN_NOT_OK(ProcessBatch(batch));
  }
}

void Engine::RecoverFromError() {
  // The failing event's half-born runs were counted created/extended but
  // never reached R(t): book them as aborted so conservation still holds.
  metrics_.runs_aborted += new_runs_.size();
  new_runs_.clear();
  CompactRuns();
  // The aborted event never reached the byte recomputation, and the merge
  // may have partially applied (greedy binds, deaths) before failing.
  bytes_synced_ = false;
}

Status Engine::VerifyInvariants() const {
  const EngineMetrics& m = metrics_;
  // Under skip-till-any-match every extension is a new run object; the
  // greedy strategies mutate in place, so only creations enter the ledger.
  const uint64_t entered =
      m.runs_created +
      (options_.selection == SelectionStrategy::kSkipTillAnyMatch
           ? m.runs_extended
           : 0);
  const uint64_t exited = m.runs_completed + m.runs_expired + m.runs_killed +
                          m.runs_shed + m.runs_aborted;
  const uint64_t live = run_store_.size();
  if (entered != exited + live) {
    return Status::Internal(StrFormat(
        "run conservation violated: created=%llu extended=%llu (entered=%llu)"
        " != completed=%llu + expired=%llu + killed=%llu + shed=%llu +"
        " aborted=%llu (exited=%llu) + live=%llu",
        static_cast<unsigned long long>(m.runs_created),
        static_cast<unsigned long long>(m.runs_extended),
        static_cast<unsigned long long>(entered),
        static_cast<unsigned long long>(m.runs_completed),
        static_cast<unsigned long long>(m.runs_expired),
        static_cast<unsigned long long>(m.runs_killed),
        static_cast<unsigned long long>(m.runs_shed),
        static_cast<unsigned long long>(m.runs_aborted),
        static_cast<unsigned long long>(exited),
        static_cast<unsigned long long>(live)));
  }
  if (m.peak_runs < live) {
    return Status::Internal(StrFormat(
        "peak_runs=%llu below live run count %llu",
        static_cast<unsigned long long>(m.peak_runs),
        static_cast<unsigned long long>(live)));
  }
  if (m.runs_shed > entered) {
    return Status::Internal(StrFormat(
        "runs_shed=%llu exceeds runs ever entered %llu",
        static_cast<unsigned long long>(m.runs_shed),
        static_cast<unsigned long long>(entered)));
  }
  if (m.parallel_events > m.events_processed) {
    return Status::Internal(StrFormat(
        "parallel_events=%llu exceeds events_processed=%llu",
        static_cast<unsigned long long>(m.parallel_events),
        static_cast<unsigned long long>(m.events_processed)));
  }
  if (m.fast_path_edges > m.edge_evaluations) {
    return Status::Internal(StrFormat(
        "fast_path_edges=%llu exceeds edge_evaluations=%llu",
        static_cast<unsigned long long>(m.fast_path_edges),
        static_cast<unsigned long long>(m.edge_evaluations)));
  }
  // SoA columns must mirror the runs they cache (deep-checks a bounded
  // prefix; the mask/slot agreement is checked for every row).
  CEP_RETURN_NOT_OK(run_store_.CheckConsistency(128));
  // The degradation ladder's byte ledger must be the exact sum of
  // Run::ApproxBytes over R(t) whenever the incremental accounting is in
  // sync (i.e. outside restore/quarantine windows).
  if (degradation_ != nullptr && bytes_synced_) {
    size_t sum = 0;
    for (const RunPtr& run : run_store_.slots()) {
      if (run != nullptr) sum += run->ApproxBytes();
    }
    if (sum != approx_run_bytes_) {
      return Status::Internal(StrFormat(
          "run byte ledger drifted: approx_run_bytes=%zu, exact sum=%zu over "
          "%llu runs",
          approx_run_bytes_, sum, static_cast<unsigned long long>(live)));
    }
  }
  return Status::OK();
}

void Engine::SyncReorderMetrics() {
  if (reorder_buffer_ == nullptr) return;
  metrics_.reorder_late_dropped = reorder_buffer_->late_dropped();
  metrics_.reorder_buffered_peak = std::max<uint64_t>(
      metrics_.reorder_buffered_peak, reorder_buffer_->buffered());
}

void Engine::ExportMetrics(obs::Registry* registry,
                           const obs::LabelSet& labels) const {
  size_t count = 0;
  const EngineMetricField* fields = EngineMetricFields(&count);
  for (size_t i = 0; i < count; ++i) {
    const EngineMetricField& field = fields[i];
    if (field.u64 != nullptr && field.monotonic) {
      registry->GetCounter(field.prom_name, field.help, labels)
          ->Set(metrics_.*field.u64);
    } else if (field.u64 != nullptr) {
      registry->GetGauge(field.prom_name, field.help, labels)
          ->Set(static_cast<double>(metrics_.*field.u64));
    } else {
      // Fractional totals (busy_micros) export as gauges: the Counter
      // instrument is integral.
      registry->GetGauge(field.prom_name, field.help, labels)
          ->Set(metrics_.*field.f64);
    }
  }
  registry
      ->GetHistogram("cep_event_busy_us",
                     "Per-event busy time (virtual microseconds except under "
                     "wall-clock latency mode)",
                     event_busy_us_.spec(), labels)
      ->CopyFrom(event_busy_us_);
  registry
      ->GetHistogram("cep_merge_us",
                     "Per-event serial merge cost proxy (one scan per live "
                     "run, virtual microseconds)",
                     merge_us_.spec(), labels)
      ->CopyFrom(merge_us_);
  registry
      ->GetHistogram("cep_shed_episode_us",
                     "Shedding-episode cost proxy (one score-and-rank pass "
                     "over R(t), virtual microseconds)",
                     shed_episode_us_.spec(), labels)
      ->CopyFrom(shed_episode_us_);
  // Binding-slab occupancy is export-only (never checkpointed): restored run
  // sets rebuild chains without cross-run sharing, so slab stats are not
  // restore-deterministic the way EngineMetrics fields must be.
  registry
      ->GetGauge("cep_binding_slab_bytes",
                 "Bytes reserved by the pooled binding-cell slab", labels)
      ->Set(static_cast<double>(arena_.cell_bytes_reserved()));
  if (const BindingCellPool* cells = arena_.cell_pool()) {
    registry
        ->GetGauge("cep_binding_cells_live",
                   "Pooled binding-chain cells currently live", labels)
        ->Set(static_cast<double>(cells->live()));
    registry
        ->GetGauge("cep_binding_cells_peak",
                   "Peak live pooled binding-chain cells", labels)
        ->Set(static_cast<double>(cells->peak_live()));
  }
  registry
      ->GetGauge("cep_degradation_level",
                 "Current overload-degradation ladder level (0 = healthy, "
                 "1 = shedding, 2 = emergency, 3 = bypass)",
                 labels)
      ->Set(static_cast<double>(degradation_level()));
  if (slo_ != nullptr) slo_->Export(registry, labels);
  if (calibration_ != nullptr) {
    calibration_->Export(registry, labels,
                         shedder_ != nullptr ? shedder_->name() : "none");
  }
  if (shadow_ != nullptr) shadow_->Export(registry, labels);
}

Status Engine::Flush() {
  bool any_dead = false;
  const size_t n = run_store_.size();
  for (size_t i = 0; i < n; ++i) {
    Run* run = run_store_.at(i);
    if (nfa_->state(run->state()).deferred_final) {
      CEP_ASSIGN_OR_RETURN(const bool emitted, TryEmit(*run, last_event_ts_));
      NoteRunOutcome(*run, last_event_ts_, emitted);
      ++metrics_.runs_expired;
      NoteRunBytesFreed(run->ApproxBytes());
      run_store_.Kill(i);
      any_dead = true;
    }
  }
  if (any_dead) CompactRuns();
  return Status::OK();
}

bool Engine::WantShedScores() const {
  if (calibration_ != nullptr) return true;
  if constexpr (obs::kEnabled) {
    return audit_log_ != nullptr || static_cast<bool>(shed_callback_);
  }
  return false;
}

void Engine::NoteRunOutcome(const Run& run, Timestamp now, bool completed) {
  if (calibration_ == nullptr || shedder_ == nullptr) return;
  ShedVictimScores scores;
  if (!shedder_->DescribeVictim(run, now, &scores)) return;
  // C+(r|t) is a matches-per-run ratio and can exceed 1 for prolific cells;
  // clamp to read it as a completion probability.
  calibration_->ObserveOutcome(std::clamp(scores.c_plus, 0.0, 1.0),
                               completed);
}

void Engine::NoteSloSample(double busy_micros) {
  if (slo_ == nullptr) return;
  const double theta = options_.latency_threshold_micros;
  slo_->Observe(
      theta > 0 && latency_monitor_->CurrentLatencyMicros() > theta,
      busy_micros);
}

void Engine::FinishShadowSpan() {
  if (shadow_ != nullptr) shadow_->Finish();
}

std::string Engine::ExportQualityJson() const {
  std::string out = "{\"schema_version\":1";
  if (shadow_ != nullptr) out += ",\"shadow\":" + shadow_->ToJson();
  if (calibration_ != nullptr) {
    out += ",\"calibration\":" + calibration_->ToJson();
  }
  if (slo_ != nullptr) out += ",\"theta_slo\":" + slo_->ToJson();
  out += "}";
  return out;
}

size_t Engine::ApplyVictims(const ShedDecision& decision, Timestamp now) {
  const size_t live = run_store_.size();
  const double fraction =
      live > 0 ? static_cast<double>(decision.victims.size()) / live : 0.0;
  const uint64_t episode = metrics_.shed_triggers;  // 0-based ordinal
  size_t applied = 0;
  for (const ShedVictim& victim : decision.victims) {
    const size_t idx = victim.index;
    if (idx >= run_store_.size() || run_store_.at(idx) == nullptr) continue;
    if constexpr (obs::kEnabled) {
      if (audit_log_ != nullptr || shed_callback_) {
        const Run& run = *run_store_.at(idx);
        obs::ShedDecisionRecord record;
        record.engine_id = obs_id_;
        record.episode = episode;
        record.run_id = run.id();
        record.nfa_state = run.state();
        record.shed_ts = now;
        record.run_start_ts = run.start_ts();
        if (victim.has_scores) {
          record.c_plus = victim.scores.c_plus;
          record.c_minus = victim.scores.c_minus;
          record.score = victim.scores.score;
          record.time_slice = victim.scores.time_slice;
        }
        record.shed_fraction = fraction;
        record.degradation_level = static_cast<uint8_t>(degradation_level());
        if (shed_callback_) shed_callback_(run, record);
        if (audit_log_ != nullptr) audit_log_->Append(std::move(record));
      }
    }
    if (calibration_ != nullptr && victim.has_scores) {
      calibration_->ObserveShed(
          std::clamp(victim.scores.c_plus, 0.0, 1.0));
    }
    NoteRunBytesFreed(run_store_.at(idx)->ApproxBytes());
    run_store_.MarkVictim(idx);
    ++metrics_.runs_shed;
    ++applied;
  }
  return applied;
}

void Engine::NoteRunBytesFreed(size_t bytes) {
  if (degradation_ == nullptr || !bytes_synced_) return;
  approx_run_bytes_ -= std::min(approx_run_bytes_, bytes);
}

void Engine::TriggerShed(Timestamp now, double latency) {
  ShedAmountOptions amount = options_.shed_amount;
  if (degradation_ != nullptr &&
      degradation_->level() >= DegradationLevel::kEmergency) {
    // kEmergency escalates the shed amount to the overshoot-scaled fraction
    // regardless of the configured mode.
    amount.mode = ShedAmountOptions::Mode::kAdaptive;
  }
  size_t target = ComputeShedTarget(amount, run_store_.size(), latency,
                                    options_.latency_threshold_micros);
  if (options_.max_runs > 0 && run_store_.size() > options_.max_runs) {
    target = std::max(target, run_store_.size() - options_.max_runs);
  }
  if (target == 0) return;
  ShedContext ctx{run_store_.slots(), now, target, WantShedScores()};
  ctx.overloaded = true;
  ctx.store = &run_store_;
  ctx.window = nfa_ != nullptr ? nfa_->window() : 0;
  ctx.degradation_level =
      degradation_ != nullptr ? static_cast<int>(degradation_->level()) : -1;
  const ShedDecision decision = shedder_->Decide(ctx);
  const size_t scanned = run_store_.size();
  const size_t applied = ApplyVictims(decision, now);
  CompactRuns();
  ++metrics_.shed_triggers;
  if constexpr (obs::kEnabled) {
    // Episode cost proxy: one score-and-rank pass over the live run set.
    const double episode_us =
        static_cast<double>(scanned) * options_.virtual_ns_per_op / 1000.0;
    shed_episode_us_.Record(episode_us);
    if (tracer_ != nullptr) {
      tracer_->Span("shed_episode", BusyClockMicros(),
                    static_cast<uint64_t>(episode_us), obs_id_ * 4 + 3,
                    "victims", applied);
    }
  }
  // Past latency samples describe the pre-shed state set; start a fresh
  // measurement interval so µ(t) reflects the reduced load.
  latency_monitor_->Reset();
  events_since_shed_ = 0;
}

void Engine::ForceShed(size_t target) {
  if (shedder_ == nullptr || run_store_.empty() || target == 0) return;
  ShedContext ctx{run_store_.slots(), last_event_ts_, target,
                  WantShedScores()};
  ctx.store = &run_store_;
  ctx.window = nfa_ != nullptr ? nfa_->window() : 0;
  ctx.degradation_level =
      degradation_ != nullptr ? static_cast<int>(degradation_->level()) : -1;
  const ShedDecision decision = shedder_->Decide(ctx);
  const size_t scanned = run_store_.size();
  const size_t applied = ApplyVictims(decision, last_event_ts_);
  CompactRuns();
  ++metrics_.shed_triggers;
  if constexpr (obs::kEnabled) {
    const double episode_us =
        static_cast<double>(scanned) * options_.virtual_ns_per_op / 1000.0;
    shed_episode_us_.Record(episode_us);
    if (tracer_ != nullptr) {
      tracer_->Span("shed_episode", BusyClockMicros(),
                    static_cast<uint64_t>(episode_us), obs_id_ * 4 + 3,
                    "victims", applied);
    }
  }
}

void Engine::CompactRuns() { run_store_.Compact(); }

// --- checkpoint / restore ----------------------------------------------------

void Engine::BuildComponentRegistry() {
  // Rebuilt on every snapshot/restore so late attachments (audit log,
  // degradation controller) are always reflected.
  components_.Clear();
  components_.Register("engine.core", core_component_.get());
  components_.Register("engine.arena", &arena_);
  components_.Register("engine.runs", runs_component_.get());
  components_.Register("engine.matches", matches_component_.get());
  components_.Register("engine.metrics", metrics_component_.get());
  components_.Register("engine.latency", latency_monitor_.get());
  if (degradation_ != nullptr) {
    components_.Register("engine.degradation", degradation_.get());
  }
  if (shedder_ != nullptr) {
    // Embedding the shedder kind in the section name makes a restore into an
    // engine with a different shedder fail as a configuration mismatch.
    components_.Register("shedder." + shedder_->name(), shedder_.get());
  }
  if (audit_log_ != nullptr) {
    components_.Register("obs.audit", audit_log_);
  }
  // Quality monitors append after every pre-existing section so snapshots
  // from builds without them keep their prefix layout.
  if (slo_ != nullptr) components_.Register("obs.slo", slo_.get());
  if (calibration_ != nullptr) {
    components_.Register("obs.calibration", calibration_.get());
  }
  if (shadow_ != nullptr) components_.Register("obs.shadow", shadow_.get());
}

const ckpt::ComponentRegistry& Engine::components() {
  BuildComponentRegistry();
  return components_;
}

Result<std::string> Engine::SerializeSnapshot() {
  BuildComponentRegistry();
  ckpt::SnapshotBuilder builder(stream_offset_);
  Status st = builder.AddComponents(components_);
  if (!st.ok()) return st;
  return builder.Finish();
}

Status Engine::RestoreFromSnapshot(std::string_view bytes) {
  CEP_ASSIGN_OR_RETURN(ckpt::SnapshotView view, ckpt::ParseSnapshot(bytes));
  BuildComponentRegistry();
  CEP_RETURN_NOT_OK(ckpt::RestoreComponents(view, components_));
  stream_offset_ = view.stream_offset;
  return Status::OK();
}

Status Engine::RestoreFromFile(const std::string& path) {
  std::string file = path;
  struct stat file_stat;
  if (::stat(path.c_str(), &file_stat) == 0 && S_ISDIR(file_stat.st_mode)) {
    CEP_ASSIGN_OR_RETURN(file, ckpt::CheckpointManager::FindLatest(path));
  }
  CEP_ASSIGN_OR_RETURN(std::string bytes, ckpt::ReadFileBytes(file));
  return RestoreFromSnapshot(bytes)
      .WithContext("restoring from '" + file + "'");
}

Status Engine::Checkpoint() {
  if (ckpt_manager_ == nullptr) {
    return Status::InvalidArgument("no checkpoint directory configured");
  }
  CEP_ASSIGN_OR_RETURN(std::string blob, SerializeSnapshot());
  return ckpt_manager_->WriteNow(blob, stream_offset_);
}

Status Engine::MaybeCheckpoint() {
  CEP_ASSIGN_OR_RETURN(std::string blob, SerializeSnapshot());
  if (options_.checkpoint.synchronous) {
    return ckpt_manager_->WriteNow(blob, stream_offset_);
  }
  ckpt_manager_->SubmitAsync(std::move(blob), stream_offset_);
  return Status::OK();
}

Status Engine::FlushCheckpoints() {
  return ckpt_manager_ != nullptr ? ckpt_manager_->Flush() : Status::OK();
}

uint64_t Engine::checkpoints_written() const {
  return ckpt_manager_ != nullptr ? ckpt_manager_->snapshots_written() : 0;
}

}  // namespace cep
