#include "engine/batch_eval.h"

namespace cep {

namespace {

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

}  // namespace

int BatchEvalPlan::InternHotSlot(int var, int attr_index, bool last) {
  for (size_t k = 0; k < hot_.size(); ++k) {
    if (hot_[k].var == var && hot_[k].attr_index == attr_index &&
        hot_[k].last == last) {
      return static_cast<int>(k);
    }
  }
  hot_.push_back(HotAttr{var, attr_index, last});
  return static_cast<int>(hot_.size() - 1);
}

bool BatchEvalPlan::CompileOperand(const Expr& expr, int current_var,
                                   Operand* out) {
  switch (expr.kind()) {
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(expr).value();
      if (!v.is_numeric() && !v.is_null()) return false;
      out->src = Src::kLit;
      out->lit = EncodeHotValue(v);
      return true;
    }
    case ExprKind::kAttrRef: {
      const auto& ref = static_cast<const AttrRefExpr&>(expr);
      if (!ref.resolved()) return false;
      const int var = ref.var_index();
      // During take-edge evaluation the candidate is virtually bound to
      // current_var, so Single/Last/Current on that variable all read the
      // candidate event; references to other variables read stored binding
      // endpoints, which the RunStore gathers as hot columns.
      switch (ref.ref_kind()) {
        case RefKind::kCurrent:
          out->src = Src::kCurrent;
          out->attr_index = ref.attr_index();
          return true;
        case RefKind::kSingle:
          if (var == current_var) {
            out->src = Src::kCurrent;
            out->attr_index = ref.attr_index();
          } else {
            out->src = Src::kHot;
            out->hot_slot = InternHotSlot(var, ref.attr_index(), false);
          }
          return true;
        case RefKind::kFirst:
          // On the variable being taken, [first] may resolve to the virtual
          // candidate (empty stored binding) — run-dependent, so generic.
          if (var == current_var) return false;
          out->src = Src::kHot;
          out->hot_slot = InternHotSlot(var, ref.attr_index(), false);
          return true;
        case RefKind::kLast:
          if (var == current_var) {
            // Virtual append: [last] is the candidate itself.
            out->src = Src::kCurrent;
            out->attr_index = ref.attr_index();
          } else {
            out->src = Src::kHot;
            out->hot_slot = InternHotSlot(var, ref.attr_index(), true);
          }
          return true;
        case RefKind::kPrev:
          // With the candidate virtually appended, [i-1] on the current
          // variable is the stored chain head; on any other variable it is
          // the second-from-last stored element — a chain walk, not a column.
          if (var != current_var) return false;
          out->src = Src::kHot;
          out->hot_slot = InternHotSlot(var, ref.attr_index(), true);
          return true;
      }
      return false;
    }
    default:
      return false;
  }
}

bool BatchEvalPlan::CompileTerm(const Expr& expr, int current_var, Term* out) {
  if (expr.kind() == ExprKind::kCall) {
    const auto& call = static_cast<const CallExpr&>(expr);
    if (call.builtin() != Builtin::kDiff || call.args().size() != 2) {
      return false;
    }
    out->is_diff = true;
    return CompileOperand(*call.args()[0], current_var, &out->x) &&
           CompileOperand(*call.args()[1], current_var, &out->y);
  }
  out->is_diff = false;
  return CompileOperand(expr, current_var, &out->x);
}

bool BatchEvalPlan::CompilePred(const Expr& expr, int current_var, Pred* out) {
  if (expr.kind() != ExprKind::kBinary) return false;
  const auto& binary = static_cast<const BinaryExpr&>(expr);
  if (!IsComparison(binary.op())) return false;
  out->op = binary.op();
  return CompileTerm(binary.left(), current_var, &out->lhs) &&
         CompileTerm(binary.right(), current_var, &out->rhs);
}

void BatchEvalPlan::Compile(const Nfa& nfa) {
  edges_.clear();
  state_base_.assign(nfa.num_states() + 1, 0);
  preds_.clear();
  hot_.clear();
  fast_edges_ = 0;
  total_edges_ = 0;
  for (const State& state : nfa.states()) {
    state_base_[static_cast<size_t>(state.id)] =
        static_cast<uint32_t>(edges_.size());
    for (size_t e = 0; e < state.edges.size(); ++e) {
      const Edge& edge = state.edges[e];
      CompiledEdge ce;
      ce.fast = true;
      ce.first = static_cast<uint32_t>(preds_.size());
      ++total_edges_;
      // Interpreter order: exit predicates first, then take predicates.
      for (const auto* group : {&edge.exit_predicates, &edge.predicates}) {
        for (const Expr* pred : *group) {
          Pred compiled;
          if (!CompilePred(*pred, edge.var_index, &compiled)) {
            ce.fast = false;
            break;
          }
          preds_.push_back(compiled);
        }
        if (!ce.fast) break;
      }
      if (!ce.fast) {
        preds_.resize(ce.first);
        ce.count = 0;
      } else {
        ce.count = static_cast<uint32_t>(preds_.size()) - ce.first;
        ++fast_edges_;
      }
      edges_.push_back(ce);
    }
  }
  state_base_[nfa.num_states()] = static_cast<uint32_t>(edges_.size());
  bound_.assign(preds_.size(), {});
}

void BatchEvalPlan::BindOperand(const Operand& op, const RunStore& store,
                                BoundOperand* out) const {
  switch (op.src) {
    case Src::kCurrent:
      out->col = nullptr;
      out->val = (op.attr_index >= 0 &&
                  static_cast<size_t>(op.attr_index) < event_attrs_.size())
                     ? event_attrs_[static_cast<size_t>(op.attr_index)]
                     : HotCell{kHotOther, 0, 0.0};
      return;
    case Src::kHot:
      out->col = store.hot(static_cast<size_t>(op.hot_slot));
      return;
    case Src::kLit:
      out->col = nullptr;
      out->val = op.lit;
      return;
  }
}

void BatchEvalPlan::BeginEvent(const Event& event, const RunStore& store) {
  const size_t n = event.num_attributes();
  event_attrs_.resize(n);
  for (size_t a = 0; a < n; ++a) {
    event_attrs_[a] = EncodeHotValue(event.attribute(static_cast<int>(a)));
  }
  for (size_t p = 0; p < preds_.size(); ++p) {
    const Pred& pred = preds_[p];
    BoundPred& bp = bound_[p];
    bp.op = pred.op;
    bp.lhs.is_diff = pred.lhs.is_diff;
    BindOperand(pred.lhs.x, store, &bp.lhs.x);
    if (pred.lhs.is_diff) BindOperand(pred.lhs.y, store, &bp.lhs.y);
    bp.rhs.is_diff = pred.rhs.is_diff;
    BindOperand(pred.rhs.x, store, &bp.rhs.x);
    if (pred.rhs.is_diff) BindOperand(pred.rhs.y, store, &bp.rhs.y);
  }
}

}  // namespace cep
