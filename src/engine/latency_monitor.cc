#include "engine/latency_monitor.h"

#include "ckpt/io.h"
#include "common/string_util.h"

namespace cep {

namespace {
constexpr size_t kMinWindow = 1;

// Snapshot kind tags; restoring a snapshot written by a different monitor
// kind means the engine configuration changed and the µ(t) state is
// meaningless — reject it.
constexpr uint8_t kTagWallClock = 1;
constexpr uint8_t kTagVirtualCost = 2;
constexpr uint8_t kTagQueueing = 3;

void SerializeRing(ckpt::Sink& sink, uint8_t tag, size_t window_events,
                   const double* samples, size_t next, size_t count,
                   double sum) {
  sink.WriteU8(tag);
  sink.WriteU64(window_events);
  sink.WriteU64(next);
  sink.WriteU64(count);
  sink.WriteDouble(sum);
  // Unfilled slots are zero (value-initialized and Reset keeps them so);
  // writing the whole ring keeps the codec positionally trivial.
  for (size_t i = 0; i < window_events; ++i) sink.WriteDouble(samples[i]);
}

Status RestoreRing(ckpt::Source& source, uint8_t expected_tag,
                   size_t window_events, double* samples, size_t* next,
                   size_t* count, double* sum) {
  CEP_ASSIGN_OR_RETURN(uint8_t tag, source.ReadU8());
  if (tag != expected_tag) {
    return Status::InvalidArgument(
        StrFormat("latency-monitor snapshot kind %u does not match the "
                  "configured monitor (kind %u)",
                  tag, expected_tag));
  }
  CEP_ASSIGN_OR_RETURN(uint64_t window, source.ReadU64());
  if (window != window_events) {
    return Status::InvalidArgument(
        StrFormat("latency-monitor snapshot window %llu does not match the "
                  "configured window %llu",
                  static_cast<unsigned long long>(window),
                  static_cast<unsigned long long>(window_events)));
  }
  CEP_ASSIGN_OR_RETURN(uint64_t next64, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(uint64_t count64, source.ReadU64());
  if (next64 >= window_events || count64 > window_events) {
    return Status::ParseError("latency-monitor snapshot cursor out of range");
  }
  CEP_ASSIGN_OR_RETURN(double restored_sum, source.ReadDouble());
  for (size_t i = 0; i < window_events; ++i) {
    CEP_ASSIGN_OR_RETURN(samples[i], source.ReadDouble());
  }
  *next = static_cast<size_t>(next64);
  *count = static_cast<size_t>(count64);
  *sum = restored_sum;
  return Status::OK();
}
}  // namespace

WallClockLatencyMonitor::WallClockLatencyMonitor(size_t window_events)
    : window_events_(window_events < kMinWindow ? kMinWindow : window_events),
      samples_(new double[window_events_]()) {}

void WallClockLatencyMonitor::Record(Timestamp /*event_ts*/, double micros,
                                     uint64_t /*ops*/) {
  if (count_ == window_events_) {
    sum_ -= samples_[next_];
  } else {
    ++count_;
  }
  samples_[next_] = micros;
  sum_ += micros;
  next_ = (next_ + 1) % window_events_;
}

double WallClockLatencyMonitor::CurrentLatencyMicros() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

void WallClockLatencyMonitor::Reset() {
  next_ = count_ = 0;
  sum_ = 0;
  for (size_t i = 0; i < window_events_; ++i) samples_[i] = 0;
}

Status WallClockLatencyMonitor::SerializeTo(ckpt::Sink& sink) const {
  SerializeRing(sink, kTagWallClock, window_events_, samples_.get(), next_,
                count_, sum_);
  return Status::OK();
}

Status WallClockLatencyMonitor::RestoreFrom(ckpt::Source& source) {
  return RestoreRing(source, kTagWallClock, window_events_, samples_.get(),
                     &next_, &count_, &sum_);
}

VirtualCostLatencyMonitor::VirtualCostLatencyMonitor(size_t window_events,
                                                     double ns_per_op)
    : window_events_(window_events < kMinWindow ? kMinWindow : window_events),
      ns_per_op_(ns_per_op),
      samples_(new double[window_events_]()) {}

void VirtualCostLatencyMonitor::Record(Timestamp /*event_ts*/,
                                       double /*micros*/, uint64_t ops) {
  const double virtual_micros =
      static_cast<double>(ops) * ns_per_op_ / 1000.0;
  if (count_ == window_events_) {
    sum_ -= samples_[next_];
  } else {
    ++count_;
  }
  samples_[next_] = virtual_micros;
  sum_ += virtual_micros;
  next_ = (next_ + 1) % window_events_;
}

double VirtualCostLatencyMonitor::CurrentLatencyMicros() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

void VirtualCostLatencyMonitor::Reset() {
  next_ = count_ = 0;
  sum_ = 0;
  for (size_t i = 0; i < window_events_; ++i) samples_[i] = 0;
}

Status VirtualCostLatencyMonitor::SerializeTo(ckpt::Sink& sink) const {
  SerializeRing(sink, kTagVirtualCost, window_events_, samples_.get(), next_,
                count_, sum_);
  return Status::OK();
}

Status VirtualCostLatencyMonitor::RestoreFrom(ckpt::Source& source) {
  return RestoreRing(source, kTagVirtualCost, window_events_, samples_.get(),
                     &next_, &count_, &sum_);
}

QueueingLatencyMonitor::QueueingLatencyMonitor(
    size_t window_events, double ns_per_op,
    double stream_micros_per_arrival_micro)
    : window_events_(window_events < kMinWindow ? kMinWindow : window_events),
      ns_per_op_(ns_per_op),
      time_compression_(stream_micros_per_arrival_micro <= 0
                            ? 1.0
                            : stream_micros_per_arrival_micro),
      samples_(new double[window_events_]()) {}

void QueueingLatencyMonitor::Record(Timestamp event_ts, double /*micros*/,
                                    uint64_t ops) {
  const double arrival =
      static_cast<double>(event_ts) / time_compression_;
  const double service = static_cast<double>(ops) * ns_per_op_ / 1000.0;
  const double start = busy_until_ > arrival ? busy_until_ : arrival;
  busy_until_ = start + service;
  const double latency = busy_until_ - arrival;
  if (count_ == window_events_) {
    sum_ -= samples_[next_];
  } else {
    ++count_;
  }
  samples_[next_] = latency;
  sum_ += latency;
  next_ = (next_ + 1) % window_events_;
}

double QueueingLatencyMonitor::CurrentLatencyMicros() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

void QueueingLatencyMonitor::Reset() {
  next_ = count_ = 0;
  sum_ = 0;
  for (size_t i = 0; i < window_events_; ++i) samples_[i] = 0;
  // The queue itself persists across measurement intervals: Reset only
  // starts a fresh µ(t) sample window (shedding reduces future service
  // times; the backlog drains physically, not by decree).
}

Status QueueingLatencyMonitor::SerializeTo(ckpt::Sink& sink) const {
  SerializeRing(sink, kTagQueueing, window_events_, samples_.get(), next_,
                count_, sum_);
  sink.WriteDouble(busy_until_);
  return Status::OK();
}

Status QueueingLatencyMonitor::RestoreFrom(ckpt::Source& source) {
  CEP_RETURN_NOT_OK(RestoreRing(source, kTagQueueing, window_events_,
                                  samples_.get(), &next_, &count_, &sum_));
  CEP_ASSIGN_OR_RETURN(busy_until_, source.ReadDouble());
  return Status::OK();
}

}  // namespace cep
