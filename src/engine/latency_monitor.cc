#include "engine/latency_monitor.h"

namespace cep {

namespace {
constexpr size_t kMinWindow = 1;
}  // namespace

WallClockLatencyMonitor::WallClockLatencyMonitor(size_t window_events)
    : window_events_(window_events < kMinWindow ? kMinWindow : window_events),
      samples_(new double[window_events_]()) {}

void WallClockLatencyMonitor::Record(Timestamp /*event_ts*/, double micros,
                                     uint64_t /*ops*/) {
  if (count_ == window_events_) {
    sum_ -= samples_[next_];
  } else {
    ++count_;
  }
  samples_[next_] = micros;
  sum_ += micros;
  next_ = (next_ + 1) % window_events_;
}

double WallClockLatencyMonitor::CurrentLatencyMicros() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

void WallClockLatencyMonitor::Reset() {
  next_ = count_ = 0;
  sum_ = 0;
  for (size_t i = 0; i < window_events_; ++i) samples_[i] = 0;
}

VirtualCostLatencyMonitor::VirtualCostLatencyMonitor(size_t window_events,
                                                     double ns_per_op)
    : window_events_(window_events < kMinWindow ? kMinWindow : window_events),
      ns_per_op_(ns_per_op),
      samples_(new double[window_events_]()) {}

void VirtualCostLatencyMonitor::Record(Timestamp /*event_ts*/,
                                       double /*micros*/, uint64_t ops) {
  const double virtual_micros =
      static_cast<double>(ops) * ns_per_op_ / 1000.0;
  if (count_ == window_events_) {
    sum_ -= samples_[next_];
  } else {
    ++count_;
  }
  samples_[next_] = virtual_micros;
  sum_ += virtual_micros;
  next_ = (next_ + 1) % window_events_;
}

double VirtualCostLatencyMonitor::CurrentLatencyMicros() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

void VirtualCostLatencyMonitor::Reset() {
  next_ = count_ = 0;
  sum_ = 0;
  for (size_t i = 0; i < window_events_; ++i) samples_[i] = 0;
}

QueueingLatencyMonitor::QueueingLatencyMonitor(
    size_t window_events, double ns_per_op,
    double stream_micros_per_arrival_micro)
    : window_events_(window_events < kMinWindow ? kMinWindow : window_events),
      ns_per_op_(ns_per_op),
      time_compression_(stream_micros_per_arrival_micro <= 0
                            ? 1.0
                            : stream_micros_per_arrival_micro),
      samples_(new double[window_events_]()) {}

void QueueingLatencyMonitor::Record(Timestamp event_ts, double /*micros*/,
                                    uint64_t ops) {
  const double arrival =
      static_cast<double>(event_ts) / time_compression_;
  const double service = static_cast<double>(ops) * ns_per_op_ / 1000.0;
  const double start = busy_until_ > arrival ? busy_until_ : arrival;
  busy_until_ = start + service;
  const double latency = busy_until_ - arrival;
  if (count_ == window_events_) {
    sum_ -= samples_[next_];
  } else {
    ++count_;
  }
  samples_[next_] = latency;
  sum_ += latency;
  next_ = (next_ + 1) % window_events_;
}

double QueueingLatencyMonitor::CurrentLatencyMicros() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

void QueueingLatencyMonitor::Reset() {
  next_ = count_ = 0;
  sum_ = 0;
  for (size_t i = 0; i < window_events_; ++i) samples_[i] = 0;
  // The queue itself persists across measurement intervals: Reset only
  // starts a fresh µ(t) sample window (shedding reduces future service
  // times; the backlog drains physically, not by decree).
}

}  // namespace cep
