#include "ckpt/io.h"

#include <cstring>

namespace cep {
namespace ckpt {

void Sink::WriteBytes(const void* data, size_t size) {
  bytes_.append(static_cast<const char*>(data), size);
}

void Sink::WriteU8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }

void Sink::WriteU32(uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  bytes_.append(buf, 4);
}

void Sink::WriteU64(uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  bytes_.append(buf, 8);
}

void Sink::WriteDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void Sink::WriteString(std::string_view s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  bytes_.append(s.data(), s.size());
}

void Sink::WriteValue(const Value& v) {
  WriteU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      WriteBool(v.bool_value());
      break;
    case ValueType::kInt:
      WriteI64(v.int_value());
      break;
    case ValueType::kDouble:
      WriteDouble(v.double_value());
      break;
    case ValueType::kString:
      WriteString(v.string_value());
      break;
  }
}

Status Source::CheckAvailable(size_t n) const {
  if (bytes_.size() - pos_ < n) {
    return Status::OutOfRange("snapshot section truncated: need " +
                              std::to_string(n) + " bytes, have " +
                              std::to_string(bytes_.size() - pos_));
  }
  return Status::OK();
}

Result<uint8_t> Source::ReadU8() {
  CEP_RETURN_NOT_OK(CheckAvailable(1));
  return static_cast<uint8_t>(bytes_[pos_++]);
}

Result<uint32_t> Source::ReadU32() {
  CEP_RETURN_NOT_OK(CheckAvailable(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i])) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> Source::ReadU64() {
  CEP_RETURN_NOT_OK(CheckAvailable(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> Source::ReadI64() {
  CEP_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<double> Source::ReadDouble() {
  CEP_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<bool> Source::ReadBool() {
  CEP_ASSIGN_OR_RETURN(uint8_t v, ReadU8());
  if (v > 1) {
    return Status::ParseError("invalid bool encoding: " + std::to_string(v));
  }
  return v != 0;
}

Result<std::string> Source::ReadString() {
  CEP_ASSIGN_OR_RETURN(uint32_t size, ReadU32());
  CEP_RETURN_NOT_OK(CheckAvailable(size));
  std::string s(bytes_.data() + pos_, size);
  pos_ += size;
  return s;
}

Result<std::string_view> Source::ReadBytes(size_t size) {
  CEP_RETURN_NOT_OK(CheckAvailable(size));
  std::string_view view = bytes_.substr(pos_, size);
  pos_ += size;
  return view;
}

Result<Value> Source::ReadValue() {
  CEP_ASSIGN_OR_RETURN(uint8_t tag, ReadU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      CEP_ASSIGN_OR_RETURN(bool v, ReadBool());
      return Value(v);
    }
    case ValueType::kInt: {
      CEP_ASSIGN_OR_RETURN(int64_t v, ReadI64());
      return Value(v);
    }
    case ValueType::kDouble: {
      CEP_ASSIGN_OR_RETURN(double v, ReadDouble());
      return Value(v);
    }
    case ValueType::kString: {
      CEP_ASSIGN_OR_RETURN(std::string v, ReadString());
      return Value(std::move(v));
    }
  }
  return Status::ParseError("unknown Value type tag: " + std::to_string(tag));
}

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const Crc32Table table;
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table.entries[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace ckpt
}  // namespace cep
