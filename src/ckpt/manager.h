#ifndef CEPSHED_CKPT_MANAGER_H_
#define CEPSHED_CKPT_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "common/result.h"
#include "common/status.h"

namespace cep {
namespace ckpt {

/// \brief Writes snapshot blobs to a checkpoint directory from a background
/// thread, keeping the engine's event loop free of disk I/O.
///
/// The engine serializes at a quiescent point (the serial merge barrier) —
/// which is cheap, memcpy-bound work — and hands the finished blob to
/// SubmitAsync. The writer thread performs the atomic temp+rename write and
/// prunes old snapshots. If a new blob arrives while one is still being
/// written, the pending (not yet started) one is replaced: under backlog we
/// keep the newest state rather than queueing history.
/// True when `name` is safe to embed as one path component under a
/// checkpoint root: non-empty, at most 64 bytes, only [A-Za-z0-9_.-], and
/// not starting with a dot (no hidden files, no "." / ".." traversal).
/// Tenant and query names arrive over the network; everything that becomes
/// a directory name must pass this check.
bool IsSafePathComponent(std::string_view name);

/// Joins `root` and one validated component into a namespaced directory
/// path ("<root>/<component>"). InvalidArgument when the component fails
/// IsSafePathComponent — the caller must treat that as a protocol error,
/// not sanitize and continue.
Result<std::string> JoinNamespace(const std::string& root,
                                  std::string_view component);

/// Creates `path` as a directory if it does not exist (one level; the
/// parent must exist). IoError when the path exists as a non-directory.
Status EnsureDirectory(const std::string& path);

class CheckpointManager {
 public:
  /// `keep` limits how many completed snapshots remain after each write
  /// (oldest pruned first); 0 means keep all.
  CheckpointManager(std::string directory, size_t keep);
  ~CheckpointManager();

  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  /// Enqueues a snapshot blob for background write. Never blocks on I/O.
  void SubmitAsync(std::string blob, uint64_t stream_offset);

  /// Synchronous write on the calling thread (used by Engine::Checkpoint()
  /// when the caller wants the snapshot durable before returning, and by
  /// tests).
  Status WriteNow(std::string_view blob, uint64_t stream_offset);

  /// Waits until all submitted snapshots are written; returns the first
  /// write error since the last Flush (if any).
  Status Flush();

  const std::string& directory() const { return directory_; }

  /// Number of snapshots successfully written so far.
  uint64_t snapshots_written() const;

  /// Scans `directory` for the valid snapshot with the highest stream
  /// offset, skipping temp files and files that fail CRC/parse validation.
  /// NotFound when the directory holds no valid snapshot.
  static Result<std::string> FindLatest(const std::string& directory);

 private:
  struct Pending {
    std::string blob;
    uint64_t stream_offset = 0;
  };

  void WriterLoop();
  Status WriteAndPrune(std::string_view blob, uint64_t stream_offset);

  const std::string directory_;
  const size_t keep_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::optional<Pending> pending_;
  bool writing_ = false;
  bool stop_ = false;
  Status first_error_;
  uint64_t written_ = 0;
  std::thread writer_;
};

}  // namespace ckpt
}  // namespace cep

#endif  // CEPSHED_CKPT_MANAGER_H_
