#ifndef CEPSHED_CKPT_STATE_COMPONENT_H_
#define CEPSHED_CKPT_STATE_COMPONENT_H_

#include <string>
#include <vector>

#include "ckpt/io.h"
#include "common/hash.h"
#include "common/status.h"

namespace cep {
namespace ckpt {

/// \brief Uniform serialization surface for every piece of engine state.
///
/// A StateComponent owns one length-prefixed section of a snapshot. The
/// engine checkpoints by iterating a ComponentRegistry — it never reaches
/// into a component's internals, so adding durable state to the engine means
/// implementing this interface and registering, nothing more.
///
/// Contract: SerializeTo must emit a byte string that is a pure function of
/// the component's logical state (no pointers, wall-clock timestamps, or
/// iteration over unordered containers without sorting), so that two
/// components with equal state produce equal bytes and Digest() can be used
/// for snapshot diffing.
class StateComponent {
 public:
  virtual ~StateComponent() = default;

  /// Appends this component's state to `sink`.
  virtual Status SerializeTo(Sink& sink) const = 0;

  /// Replaces this component's state from `source`. On error the component
  /// may be left in an unspecified state; callers restore into fresh objects
  /// or discard the engine on failure.
  virtual Status RestoreFrom(Source& source) = 0;

  /// Stable fingerprint of the component's logical state. The default
  /// serializes and hashes; override only when a cheaper exact fingerprint
  /// exists.
  virtual uint64_t Digest() const {
    Sink sink;
    if (!SerializeTo(sink).ok()) return 0;
    return HashBytes(sink.bytes().data(), sink.size());
  }
};

/// \brief One named entry in a component registry. The name becomes the
/// section name inside the snapshot and must be unique per engine.
struct RegisteredComponent {
  std::string name;
  StateComponent* component = nullptr;
};

/// \brief Ordered list of components that together form an engine's durable
/// state. Order is the serialization order and must be stable across builds
/// for snapshot files to be comparable.
class ComponentRegistry {
 public:
  void Register(std::string name, StateComponent* component) {
    entries_.push_back(RegisteredComponent{std::move(name), component});
  }

  const std::vector<RegisteredComponent>& entries() const { return entries_; }
  void Clear() { entries_.clear(); }

  StateComponent* Find(std::string_view name) const {
    for (const auto& e : entries_) {
      if (e.name == name) return e.component;
    }
    return nullptr;
  }

 private:
  std::vector<RegisteredComponent> entries_;
};

}  // namespace ckpt
}  // namespace cep

#endif  // CEPSHED_CKPT_STATE_COMPONENT_H_
