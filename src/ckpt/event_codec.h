#ifndef CEPSHED_CKPT_EVENT_CODEC_H_
#define CEPSHED_CKPT_EVENT_CODEC_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ckpt/io.h"
#include "common/result.h"
#include "common/status.h"
#include "event/event.h"
#include "event/schema.h"

namespace cep {
namespace ckpt {

/// \brief Deduplicating event table for snapshot serialization.
///
/// Runs share events via shared_ptr, so the exponential partial-match state
/// references each arriving event many times. The snapshot stores every
/// distinct event once and encodes run bindings as indices into this table.
/// Schemas are likewise deduplicated and serialized self-contained, so
/// restore does not need access to the original SchemaRegistry.
///
/// Deduplication is keyed on the serialized record bytes, not on pointer
/// identity. This matters for replay determinism: after a restore, the
/// engine holds reconstructed copies of pre-checkpoint events alongside the
/// stream originals of post-restore events, and a later snapshot must intern
/// a logically identical event to the same slot regardless of which
/// allocation a binding happens to reference.
///
/// Usage: call Intern() for every event reachable from runs/matches while
/// serializing them into a side sink, then Serialize() the table itself ahead
/// of that sink's bytes.
class EventTableBuilder {
 public:
  /// Returns the table index for `event`, adding it on first sight.
  uint32_t Intern(const EventPtr& event);

  /// Writes the schema table followed by the event table.
  void Serialize(Sink& sink) const;

  size_t size() const { return encoded_events_.size(); }

 private:
  uint32_t InternSchema(const EventSchema& schema);

  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> encoded_events_;
  std::unordered_map<std::string, uint32_t> schema_index_;
  std::vector<std::string> encoded_schemas_;
};

/// \brief Restored event table: resolves binding indices back to shared
/// events. Events deduplicated at serialization time come back as one shared
/// allocation, preserving the memory profile of the original engine.
class EventTable {
 public:
  Status RestoreFrom(Source& source);

  Result<EventPtr> Get(uint32_t index) const;

  size_t size() const { return events_.size(); }

 private:
  std::vector<EventPtr> events_;
};

}  // namespace ckpt
}  // namespace cep

#endif  // CEPSHED_CKPT_EVENT_CODEC_H_
