#include "ckpt/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/hash.h"

namespace cep {
namespace ckpt {

Status SnapshotBuilder::AddComponents(const ComponentRegistry& registry) {
  for (const auto& entry : registry.entries()) {
    Sink section;
    CEP_RETURN_NOT_OK(entry.component->SerializeTo(section).WithContext(
        "serializing component '" + entry.name + "'"));
    sections_.emplace_back(entry.name, section.TakeBytes());
  }
  return Status::OK();
}

void SnapshotBuilder::AddSection(std::string_view name,
                                 std::string_view payload) {
  sections_.emplace_back(std::string(name), std::string(payload));
}

std::string SnapshotBuilder::Finish() const {
  Sink sink;
  sink.WriteBytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  sink.WriteU32(kSnapshotVersion);
  sink.WriteU32(0);  // flags
  sink.WriteU64(stream_offset_);
  sink.WriteU32(static_cast<uint32_t>(sections_.size()));
  for (const auto& [name, payload] : sections_) {
    sink.WriteString(name);
    sink.WriteU64(payload.size());
    sink.WriteBytes(payload.data(), payload.size());
    sink.WriteU64(HashBytes(payload.data(), payload.size()));
  }
  uint32_t crc = Crc32(sink.bytes());
  sink.WriteU32(crc);
  return std::string(sink.bytes());
}

Result<SnapshotView> ParseSnapshot(std::string_view bytes) {
  constexpr size_t kMinSize = sizeof(kSnapshotMagic) + 4 + 4 + 8 + 4 + 4;
  if (bytes.size() < kMinSize) {
    return Status::DataLoss("snapshot too short (" +
                            std::to_string(bytes.size()) + " bytes)");
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::ParseError("bad snapshot magic");
  }
  // CRC covers everything before the 4-byte trailer.
  std::string_view body = bytes.substr(0, bytes.size() - 4);
  Source trailer(bytes.substr(bytes.size() - 4));
  CEP_ASSIGN_OR_RETURN(uint32_t stored_crc, trailer.ReadU32());
  uint32_t actual_crc = Crc32(body);
  if (stored_crc != actual_crc) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "CRC mismatch: stored %08x, computed %08x",
                  stored_crc, actual_crc);
    return Status::DataLoss(buf);
  }

  Source source(body.substr(sizeof(kSnapshotMagic)));
  SnapshotView view;
  CEP_ASSIGN_OR_RETURN(view.version, source.ReadU32());
  if (view.version != kSnapshotVersion) {
    return Status::ParseError("unsupported snapshot version " +
                              std::to_string(view.version));
  }
  CEP_ASSIGN_OR_RETURN(uint32_t flags, source.ReadU32());
  (void)flags;
  CEP_ASSIGN_OR_RETURN(view.stream_offset, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(uint32_t count, source.ReadU32());
  view.sections.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SnapshotSection section;
    CEP_ASSIGN_OR_RETURN(section.name, source.ReadString());
    CEP_ASSIGN_OR_RETURN(uint64_t payload_size, source.ReadU64());
    CEP_ASSIGN_OR_RETURN(section.payload, source.ReadBytes(payload_size));
    CEP_ASSIGN_OR_RETURN(section.digest, source.ReadU64());
    uint64_t actual =
        HashBytes(section.payload.data(), section.payload.size());
    if (actual != section.digest) {
      return Status::DataLoss("digest mismatch in section '" + section.name +
                              "'");
    }
    view.sections.push_back(std::move(section));
  }
  if (!source.AtEnd()) {
    return Status::ParseError("trailing bytes after last snapshot section");
  }
  return view;
}

Status RestoreComponents(const SnapshotView& view,
                         const ComponentRegistry& registry) {
  if (view.sections.size() != registry.entries().size()) {
    return Status::NotFound(
        "snapshot has " + std::to_string(view.sections.size()) +
        " sections but engine registers " +
        std::to_string(registry.entries().size()) +
        " components (configuration mismatch)");
  }
  for (const auto& entry : registry.entries()) {
    const SnapshotSection* section = view.Find(entry.name);
    if (section == nullptr) {
      return Status::NotFound("snapshot missing section '" + entry.name +
                              "' (configuration mismatch)");
    }
    Source source(section->payload);
    CEP_RETURN_NOT_OK(entry.component->RestoreFrom(source).WithContext(
        "restoring component '" + entry.name + "'"));
    if (!source.AtEnd()) {
      return Status::ParseError("component '" + entry.name + "' left " +
                                std::to_string(source.remaining()) +
                                " unread bytes");
    }
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + kSnapshotTempSuffix;
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("open '" + tmp + "': " + std::strerror(errno));
  }
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st =
          Status::IoError("write '" + tmp + "': " + std::strerror(errno));
      ::close(fd);
      ::unlink(tmp.c_str());
      return st;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status st = Status::IoError("fsync '" + tmp + "': " + std::strerror(errno));
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError("close '" + tmp + "': " + std::strerror(errno));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = Status::IoError("rename '" + tmp + "' -> '" + path +
                                "': " + std::strerror(errno));
    ::unlink(tmp.c_str());
    return st;
  }
  return Status::OK();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("open '" + path + "': " + std::strerror(errno));
  }
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st =
          Status::IoError("read '" + path + "': " + std::strerror(errno));
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return bytes;
}

std::string SnapshotFileName(uint64_t stream_offset) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "ckpt-%020llu%s",
                static_cast<unsigned long long>(stream_offset),
                kSnapshotExtension);
  return buf;
}

Result<uint64_t> ParseSnapshotFileName(std::string_view filename) {
  constexpr std::string_view kPrefix = "ckpt-";
  const std::string_view ext = kSnapshotExtension;
  if (filename.size() <= kPrefix.size() + ext.size() ||
      filename.substr(0, kPrefix.size()) != kPrefix ||
      filename.substr(filename.size() - ext.size()) != ext) {
    return Status::NotFound("not a snapshot filename: " +
                            std::string(filename));
  }
  std::string_view digits = filename.substr(
      kPrefix.size(), filename.size() - kPrefix.size() - ext.size());
  uint64_t offset = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return Status::NotFound("not a snapshot filename: " +
                              std::string(filename));
    }
    offset = offset * 10 + static_cast<uint64_t>(c - '0');
  }
  return offset;
}

}  // namespace ckpt
}  // namespace cep
