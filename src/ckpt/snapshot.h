#ifndef CEPSHED_CKPT_SNAPSHOT_H_
#define CEPSHED_CKPT_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/io.h"
#include "ckpt/state_component.h"
#include "common/result.h"
#include "common/status.h"

namespace cep {
namespace ckpt {

/// Snapshot file layout (version 1, all integers little-endian):
///
///   [0..7]   magic "CEPSNAP\x01"
///   u32      format version (1)
///   u32      flags (reserved, 0)
///   u64      stream offset (events consumed before this snapshot)
///   u32      component count N
///   N x {    string  component name
///            u64     payload size P
///            P bytes payload
///            u64     digest (FNV-1a of payload bytes) }
///   u32      CRC-32 of everything above
///
/// No wall-clock timestamps: equal engine state produces byte-identical
/// snapshot files, which the replay-determinism tests rely on.
inline constexpr char kSnapshotMagic[8] = {'C', 'E', 'P', 'S',
                                          'N', 'A', 'P', '\x01'};
inline constexpr uint32_t kSnapshotVersion = 1;
/// Suffix of in-progress snapshot writes; readers ignore these.
inline constexpr const char* kSnapshotTempSuffix = ".tmp";
/// Extension of completed snapshot files: ckpt-<offset>.cep
inline constexpr const char* kSnapshotExtension = ".cep";

/// \brief One named, length-prefixed component section of a parsed snapshot.
struct SnapshotSection {
  std::string name;
  std::string_view payload;  ///< view into the parsed buffer
  uint64_t digest = 0;
};

/// \brief Parsed, CRC-verified snapshot. `sections` views point into the
/// buffer passed to ParseSnapshot, which must outlive the view.
struct SnapshotView {
  uint32_t version = 0;
  uint64_t stream_offset = 0;
  std::vector<SnapshotSection> sections;

  const SnapshotSection* Find(std::string_view name) const {
    for (const auto& s : sections) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }
};

/// \brief Assembles a snapshot byte string from a component registry.
class SnapshotBuilder {
 public:
  explicit SnapshotBuilder(uint64_t stream_offset)
      : stream_offset_(stream_offset) {}

  /// Serializes every registered component into its own section.
  Status AddComponents(const ComponentRegistry& registry);

  /// Adds a pre-serialized section (used by MultiEngine to nest per-query
  /// engine snapshots).
  void AddSection(std::string_view name, std::string_view payload);

  /// Finalizes header + sections + CRC trailer and returns the file bytes.
  std::string Finish() const;

 private:
  uint64_t stream_offset_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// Parses and validates snapshot bytes: magic, version, CRC trailer, and
/// per-section digests. CRC or digest mismatch yields DataLoss; structural
/// problems yield ParseError.
Result<SnapshotView> ParseSnapshot(std::string_view bytes);

/// Restores every section of `view` into the matching component of
/// `registry`. Fails with NotFound if a section has no registered component
/// or a component has no section (config mismatch between snapshot and
/// engine).
Status RestoreComponents(const SnapshotView& view,
                         const ComponentRegistry& registry);

/// Writes `bytes` to `path` atomically: write to `path + ".tmp"`, fsync,
/// rename. A crash mid-write leaves only a torn temp file that readers skip.
Status WriteFileAtomic(const std::string& path, std::string_view bytes);

/// Reads a whole file into a string.
Result<std::string> ReadFileBytes(const std::string& path);

/// Composes the snapshot filename for a stream offset: ckpt-<offset>.cep
/// (offset zero-padded to 20 digits so lexicographic order equals numeric).
std::string SnapshotFileName(uint64_t stream_offset);

/// Parses a stream offset back out of a snapshot filename; returns error for
/// non-snapshot files (temp files, strangers in the directory).
Result<uint64_t> ParseSnapshotFileName(std::string_view filename);

}  // namespace ckpt
}  // namespace cep

#endif  // CEPSHED_CKPT_SNAPSHOT_H_
