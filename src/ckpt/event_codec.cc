#include "ckpt/event_codec.h"

#include <utility>

namespace cep {
namespace ckpt {

uint32_t EventTableBuilder::InternSchema(const EventSchema& schema) {
  Sink record;
  record.WriteString(schema.name());
  record.WriteU32(static_cast<uint32_t>(schema.num_attributes()));
  for (const auto& attr : schema.attributes()) {
    record.WriteString(attr.name);
    record.WriteU8(static_cast<uint8_t>(attr.type));
  }
  auto it = schema_index_.find(record.bytes());
  if (it != schema_index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(encoded_schemas_.size());
  std::string bytes = record.TakeBytes();
  schema_index_.emplace(bytes, id);
  encoded_schemas_.push_back(std::move(bytes));
  return id;
}

uint32_t EventTableBuilder::Intern(const EventPtr& event) {
  Sink record;
  record.WriteU32(InternSchema(event->schema()));
  record.WriteU32(event->type());
  record.WriteI64(event->timestamp());
  record.WriteU64(event->sequence());
  record.WriteU32(static_cast<uint32_t>(event->num_attributes()));
  for (size_t i = 0; i < event->num_attributes(); ++i) {
    record.WriteValue(event->attribute(static_cast<int>(i)));
  }
  auto it = index_.find(record.bytes());
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(encoded_events_.size());
  std::string bytes = record.TakeBytes();
  index_.emplace(bytes, id);
  encoded_events_.push_back(std::move(bytes));
  return id;
}

void EventTableBuilder::Serialize(Sink& sink) const {
  sink.WriteU32(static_cast<uint32_t>(encoded_schemas_.size()));
  for (const auto& record : encoded_schemas_) {
    sink.WriteBytes(record.data(), record.size());
  }
  sink.WriteU32(static_cast<uint32_t>(encoded_events_.size()));
  for (const auto& record : encoded_events_) {
    sink.WriteBytes(record.data(), record.size());
  }
}

Status EventTable::RestoreFrom(Source& source) {
  events_.clear();
  CEP_ASSIGN_OR_RETURN(uint32_t num_schemas, source.ReadU32());
  std::vector<SchemaPtr> schemas;
  schemas.reserve(num_schemas);
  for (uint32_t s = 0; s < num_schemas; ++s) {
    CEP_ASSIGN_OR_RETURN(std::string name, source.ReadString());
    CEP_ASSIGN_OR_RETURN(uint32_t num_attrs, source.ReadU32());
    std::vector<AttributeDef> attrs;
    attrs.reserve(num_attrs);
    for (uint32_t a = 0; a < num_attrs; ++a) {
      AttributeDef def;
      CEP_ASSIGN_OR_RETURN(def.name, source.ReadString());
      CEP_ASSIGN_OR_RETURN(uint8_t type_tag, source.ReadU8());
      if (type_tag > static_cast<uint8_t>(ValueType::kString)) {
        return Status::ParseError("invalid attribute type tag " +
                                  std::to_string(type_tag) + " in schema '" +
                                  name + "'");
      }
      def.type = static_cast<ValueType>(type_tag);
      attrs.push_back(std::move(def));
    }
    schemas.push_back(
        std::make_shared<const EventSchema>(std::move(name), std::move(attrs)));
  }

  CEP_ASSIGN_OR_RETURN(uint32_t num_events, source.ReadU32());
  events_.reserve(num_events);
  for (uint32_t e = 0; e < num_events; ++e) {
    CEP_ASSIGN_OR_RETURN(uint32_t schema_id, source.ReadU32());
    if (schema_id >= schemas.size()) {
      return Status::ParseError("event references schema " +
                                std::to_string(schema_id) + " of " +
                                std::to_string(schemas.size()));
    }
    CEP_ASSIGN_OR_RETURN(uint32_t type, source.ReadU32());
    CEP_ASSIGN_OR_RETURN(int64_t timestamp, source.ReadI64());
    CEP_ASSIGN_OR_RETURN(uint64_t sequence, source.ReadU64());
    CEP_ASSIGN_OR_RETURN(uint32_t num_attrs, source.ReadU32());
    std::vector<Value> values;
    values.reserve(num_attrs);
    for (uint32_t a = 0; a < num_attrs; ++a) {
      CEP_ASSIGN_OR_RETURN(Value v, source.ReadValue());
      values.push_back(std::move(v));
    }
    events_.push_back(std::make_shared<const Event>(
        type, schemas[schema_id], timestamp, std::move(values), sequence));
  }
  return Status::OK();
}

Result<EventPtr> EventTable::Get(uint32_t index) const {
  if (index >= events_.size()) {
    return Status::OutOfRange("event table index " + std::to_string(index) +
                              " out of range (" + std::to_string(events_.size()) +
                              " entries)");
  }
  return events_[index];
}

}  // namespace ckpt
}  // namespace cep
