#include "ckpt/manager.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "ckpt/snapshot.h"

namespace cep {
namespace ckpt {

bool IsSafePathComponent(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  if (name.front() == '.') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Result<std::string> JoinNamespace(const std::string& root,
                                  std::string_view component) {
  if (!IsSafePathComponent(component)) {
    return Status::InvalidArgument("unsafe path component '" +
                                   std::string(component) + "'");
  }
  std::string path = root;
  if (!path.empty() && path.back() != '/') path += '/';
  path.append(component);
  return path;
}

Status EnsureDirectory(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) == 0) {
    if (S_ISDIR(st.st_mode)) return Status::OK();
    return Status::IoError("'" + path + "' exists and is not a directory");
  }
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir '" + path + "': " + std::strerror(errno));
  }
  return Status::OK();
}

namespace {

/// Lists completed snapshot filenames in `directory`, sorted ascending by
/// offset (the zero-padded name makes lexicographic == numeric order).
Result<std::vector<std::string>> ListSnapshots(const std::string& directory) {
  DIR* dir = ::opendir(directory.c_str());
  if (dir == nullptr) {
    return Status::IoError("opendir '" + directory +
                           "': " + std::strerror(errno));
  }
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string_view name(entry->d_name);
    if (ParseSnapshotFileName(name).ok()) names.emplace_back(name);
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

CheckpointManager::CheckpointManager(std::string directory, size_t keep)
    : directory_(std::move(directory)), keep_(keep) {
  writer_ = std::thread([this] { WriterLoop(); });
}

CheckpointManager::~CheckpointManager() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (writer_.joinable()) writer_.join();
}

void CheckpointManager::SubmitAsync(std::string blob, uint64_t stream_offset) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Keep-latest: an unstarted pending snapshot is superseded, not queued.
    pending_ = Pending{std::move(blob), stream_offset};
  }
  cv_.notify_all();
}

Status CheckpointManager::WriteNow(std::string_view blob,
                                   uint64_t stream_offset) {
  Status st = WriteAndPrune(blob, stream_offset);
  if (st.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++written_;
  }
  return st;
}

Status CheckpointManager::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !pending_.has_value() && !writing_; });
  Status st = first_error_;
  first_error_ = Status::OK();
  return st;
}

uint64_t CheckpointManager::snapshots_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return written_;
}

void CheckpointManager::WriterLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || pending_.has_value(); });
    if (pending_.has_value()) {
      Pending job = std::move(*pending_);
      pending_.reset();
      writing_ = true;
      lock.unlock();
      Status st = WriteAndPrune(job.blob, job.stream_offset);
      lock.lock();
      writing_ = false;
      if (st.ok()) {
        ++written_;
      } else if (first_error_.ok()) {
        first_error_ = st;
      }
      cv_.notify_all();
      continue;  // drain any snapshot submitted while writing
    }
    if (stop_) return;
  }
}

Status CheckpointManager::WriteAndPrune(std::string_view blob,
                                        uint64_t stream_offset) {
  CEP_RETURN_NOT_OK(EnsureDirectory(directory_));
  const std::string path =
      directory_ + "/" + SnapshotFileName(stream_offset);
  CEP_RETURN_NOT_OK(WriteFileAtomic(path, blob));
  if (keep_ == 0) return Status::OK();
  CEP_ASSIGN_OR_RETURN(std::vector<std::string> names,
                       ListSnapshots(directory_));
  while (names.size() > keep_) {
    const std::string victim = directory_ + "/" + names.front();
    names.erase(names.begin());
    if (::unlink(victim.c_str()) != 0 && errno != ENOENT) {
      return Status::IoError("unlink '" + victim +
                             "': " + std::strerror(errno));
    }
  }
  return Status::OK();
}

Result<std::string> CheckpointManager::FindLatest(
    const std::string& directory) {
  CEP_ASSIGN_OR_RETURN(std::vector<std::string> names,
                       ListSnapshots(directory));
  // Newest first; skip files that fail validation (torn or corrupted) so a
  // crash mid-write or a flipped bit falls back to the previous snapshot.
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    const std::string path = directory + "/" + *it;
    auto bytes = ReadFileBytes(path);
    if (!bytes.ok()) continue;
    if (ParseSnapshot(bytes.ValueOrDie()).ok()) return path;
  }
  return Status::NotFound("no valid snapshot in '" + directory + "'");
}

}  // namespace ckpt
}  // namespace cep
