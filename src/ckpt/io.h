#ifndef CEPSHED_CKPT_IO_H_
#define CEPSHED_CKPT_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "common/value.h"

namespace cep {
namespace ckpt {

/// \brief Append-only byte sink for snapshot serialization.
///
/// All multi-byte integers are written little-endian regardless of host
/// order; doubles are written as their IEEE-754 bit pattern so NaN payloads
/// and signed zeros round-trip exactly. Strings are length-prefixed (u32) and
/// may contain embedded NULs.
class Sink {
 public:
  Sink() = default;

  void WriteBytes(const void* data, size_t size);
  void WriteU8(uint8_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteDouble(double v);
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteString(std::string_view s);
  void WriteValue(const Value& v);

  const std::string& bytes() const { return bytes_; }
  std::string TakeBytes() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }
  void Clear() { bytes_.clear(); }

 private:
  std::string bytes_;
};

/// \brief Bounded cursor over serialized bytes; every read is range-checked
/// and returns OutOfRange instead of reading past the end, so a truncated or
/// corrupted section can never crash the restore path.
class Source {
 public:
  explicit Source(std::string_view bytes) : bytes_(bytes) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<bool> ReadBool();
  Result<std::string> ReadString();
  Result<Value> ReadValue();
  /// Reads `size` raw bytes as a view into the underlying buffer (valid only
  /// while the buffer outlives the Source).
  Result<std::string_view> ReadBytes(size_t size);

  size_t remaining() const { return bytes_.size() - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  Status CheckAvailable(size_t n) const;

  std::string_view bytes_;
  size_t pos_ = 0;
};

/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte
/// range. Guards every snapshot file against torn writes and bit rot.
uint32_t Crc32(const void* data, size_t size);
inline uint32_t Crc32(std::string_view s) { return Crc32(s.data(), s.size()); }

}  // namespace ckpt
}  // namespace cep

#endif  // CEPSHED_CKPT_IO_H_
