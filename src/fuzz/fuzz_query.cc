#include <cstddef>
#include <cstdint>

#include "fuzz/fuzz_util.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  cep::fuzz::RunQueryFuzz(data, size);
  return 0;
}
