#include "fuzz/fuzz_util.h"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string_view>
#include <vector>

#include "ckpt/io.h"
#include "ckpt/snapshot.h"
#include "common/result.h"
#include "event/csv.h"
#include "event/schema.h"
#include "nfa/compiler.h"
#include "query/analyzer.h"
#include "query/parser.h"

// A violated property is a finding for both drivers (libFuzzer traps the
// abort; the replay driver's exit code fails ctest).
#define CEP_FUZZ_CHECK(cond, msg)                               \
  do {                                                          \
    if (!(cond)) {                                              \
      std::fprintf(stderr, "fuzz property violated: %s\n", msg); \
      std::abort();                                             \
    }                                                           \
  } while (0)

namespace cep {
namespace fuzz {

uint8_t FuzzInput::TakeByte() {
  if (pos_ >= size_) return 0;
  return data_[pos_++];
}

uint64_t FuzzInput::TakeU64() {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | TakeByte();
  return v;
}

uint64_t FuzzInput::TakeBounded(uint64_t n) {
  if (n == 0) return 0;
  // Modulo bias is irrelevant here: coverage, not statistics, drives fuzzing.
  return TakeU64() % n;
}

std::string FuzzInput::TakeString(size_t max_len) {
  const size_t len =
      static_cast<size_t>(TakeBounded(static_cast<uint64_t>(max_len) + 1));
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len && pos_ < size_; ++i) {
    out.push_back(static_cast<char>(data_[pos_++]));
  }
  return out;
}

std::string FuzzInput::TakeRest() {
  std::string out(reinterpret_cast<const char*>(data_ + pos_), size_ - pos_);
  pos_ = size_;
  return out;
}

namespace {

/// Event types every fuzz target agrees on. Intentionally double-free:
/// doubles print through %.6g in CSV, so a double attribute would make the
/// write -> reread round-trip property fail for reasons that are not bugs.
const SchemaRegistry& FuzzRegistry() {
  static const SchemaRegistry* registry = [] {
    auto* r = new SchemaRegistry();
    (void)r->Register("req", {{"loc", ValueType::kInt},
                              {"uid", ValueType::kInt}});
    (void)r->Register("avail", {{"loc", ValueType::kInt},
                                {"bid", ValueType::kInt}});
    (void)r->Register("unlock", {{"loc", ValueType::kInt},
                                 {"uid", ValueType::kInt},
                                 {"bid", ValueType::kInt}});
    (void)r->Register("note", {{"txt", ValueType::kString},
                               {"n", ValueType::kInt}});
    return r;
  }();
  return *registry;
}

// --- query assembly ---------------------------------------------------------

constexpr const char* kTypeNames[] = {"req", "avail", "unlock", "note", "zzz"};
constexpr const char* kPredicates[] = {
    "a.loc >= 0",
    "c.uid = a.uid",
    "diff(b[i].loc, a.loc) < 8",
    "b[i].loc > b[i-1].loc",
    "COUNT(b[]) > 2",
    "abs(a.loc - 3) + min(a.uid, 5) < max(a.loc, 9)",
    "a.loc = 1 AND (a.uid = 2 OR NOT a.uid = 3)",
    "b[first].loc <= b[last].loc",
};
constexpr const char* kUnits[] = {"us", "ms", "sec", "min", "hour", "hours",
                                  "parsecs"};

/// Grammar-directed query text: mostly well-formed, with fuzz-driven
/// structure choices and occasional raw-byte splices so the parser sees both
/// deep valid shapes and near-miss corruptions.
std::string AssembleQuery(FuzzInput& in) {
  std::string q = "PATTERN SEQ(";
  const uint64_t elems = 1 + in.TakeBounded(4);
  for (uint64_t i = 0; i < elems; ++i) {
    if (i != 0) q += ", ";
    const uint64_t kind = in.TakeBounded(4);
    const char* type = kTypeNames[in.TakeBounded(std::size(kTypeNames))];
    const char var = static_cast<char>('a' + (i % 26));
    switch (kind) {
      case 0:
        q += type;
        q += ' ';
        q += var;
        break;
      case 1:  // Kleene plus
        q += type;
        q += "+ ";
        q += var;
        q += "[]";
        break;
      case 2:  // negation
        q += in.TakeBool() ? "NOT " : "! ";
        q += type;
        q += ' ';
        q += var;
        break;
      default:  // raw splice
        q += in.TakeString(12);
        break;
    }
  }
  q += ")";
  const uint64_t preds = in.TakeBounded(4);
  if (preds > 0) {
    q += " WHERE ";
    for (uint64_t i = 0; i < preds; ++i) {
      if (i != 0) q += ", ";
      if (in.TakeBounded(8) == 0) {
        q += in.TakeString(16);
      } else {
        q += kPredicates[in.TakeBounded(std::size(kPredicates))];
      }
    }
  }
  q += " WITHIN ";
  q += std::to_string(in.TakeBounded(1u << 20));
  q += ' ';
  q += kUnits[in.TakeBounded(std::size(kUnits))];
  if (in.TakeBool()) {
    q += " RETURN warning(loc = a.loc)";
  }
  if (in.TakeBool()) {
    q += " -- ";
    q += in.TakeString(8);
  }
  // Truncation exercises every "unexpected end of input" path.
  if (in.TakeBounded(4) == 0) {
    q.resize(static_cast<size_t>(in.TakeBounded(q.size() + 1)));
  }
  return q;
}

// --- CSV assembly -----------------------------------------------------------

std::string AssembleCsvField(FuzzInput& in) {
  switch (in.TakeBounded(6)) {
    case 0:
      return std::to_string(in.TakeI64());
    case 1:
      return "";  // null
    case 2: {  // quoted string with embedded separators / quotes / newlines
      std::string raw = in.TakeString(10);
      if (in.TakeBool()) raw += ",\"\"\n";
      std::string quoted = "\"";
      for (const char c : raw) {
        quoted += c;
        if (c == '"') quoted += '"';
      }
      quoted += '"';
      return quoted;
    }
    case 3:
      return "9223372036854775807";  // INT64_MAX
    case 4:
      return "99999999999999999999999";  // overflows int64
    default:
      return in.TakeString(6);
  }
}

constexpr const char* kTimestamps[] = {
    "0", "60000000", "9223372036854775807", "-9223372036854775808",
    "999999999999999999999", "not-a-number"};

std::string AssembleCsv(FuzzInput& in) {
  std::string text;
  const uint64_t records = 1 + in.TakeBounded(8);
  for (uint64_t r = 0; r < records; ++r) {
    std::string line;
    if (in.TakeBounded(8) == 0) {
      line = in.TakeString(24);  // raw garbage record
    } else {
      line = kTypeNames[in.TakeBounded(std::size(kTypeNames))];
      line += ',';
      line += kTimestamps[in.TakeBounded(std::size(kTimestamps))];
      const uint64_t fields = in.TakeBounded(5);
      for (uint64_t f = 0; f < fields; ++f) {
        line += ',';
        line += AssembleCsvField(in);
      }
    }
    text += line;
    text += in.TakeBounded(8) == 0 ? "\r\n" : "\n";
  }
  return text;
}

void CsvPipeline(const std::string& text) {
  const SchemaRegistry& registry = FuzzRegistry();
  {
    std::istringstream strict(text);
    (void)ReadEventsCsv(registry, strict);  // first error fails the read
  }
  std::istringstream in(text);
  CsvReadOptions options;
  options.max_consecutive_errors = 4;
  CsvReadStats stats;
  auto events_r = ReadEventsCsv(registry, in, options, &stats);
  if (!events_r.ok()) return;
  const std::vector<EventPtr>& events = events_r.ValueOrDie();

  // Round-trip property: whatever the quarantining reader accepted must
  // serialize to CSV that a *strict* reader maps back to the same events.
  std::ostringstream rewritten;
  CEP_FUZZ_CHECK(WriteEventsCsv(rewritten, events).ok(),
                 "WriteEventsCsv failed on events the reader accepted");
  std::istringstream reread_in(rewritten.str());
  auto reread_r = ReadEventsCsv(registry, reread_in);
  CEP_FUZZ_CHECK(reread_r.ok(), "writer output rejected by strict reader");
  const std::vector<EventPtr>& reread = reread_r.ValueOrDie();
  CEP_FUZZ_CHECK(reread.size() == events.size(),
                 "CSV round-trip changed the event count");
  for (size_t i = 0; i < events.size(); ++i) {
    CEP_FUZZ_CHECK(
        EventToCsvLine(*events[i]) == EventToCsvLine(*reread[i]),
        "CSV round-trip changed an event");
  }
}

// --- snapshot / codec -------------------------------------------------------

/// Interprets fuzz bytes as a read program against the range-checked Source.
void SourceReadProgram(FuzzInput& in, std::string_view bytes) {
  ckpt::Source source(bytes);
  for (int op = 0; op < 64 && !source.AtEnd(); ++op) {
    bool ok = true;
    switch (in.TakeBounded(9)) {
      case 0: ok = source.ReadU8().ok(); break;
      case 1: ok = source.ReadU32().ok(); break;
      case 2: ok = source.ReadU64().ok(); break;
      case 3: ok = source.ReadI64().ok(); break;
      case 4: ok = source.ReadDouble().ok(); break;
      case 5: ok = source.ReadBool().ok(); break;
      case 6: ok = source.ReadString().ok(); break;
      case 7: ok = source.ReadValue().ok(); break;
      default:
        ok = source.ReadBytes(static_cast<size_t>(in.TakeBounded(64))).ok();
        break;
    }
    if (!ok) break;  // range-checked refusal, not a crash: working as intended
  }
}

Value FuzzValue(FuzzInput& in) {
  switch (in.TakeBounded(5)) {
    case 0: return Value();
    case 1: return Value(in.TakeBool());
    case 2: return Value(in.TakeI64());
    case 3:
      // Bit pattern, not a numeric literal: NaN payloads, infinities, and
      // subnormals must all survive the codec.
      return Value(std::bit_cast<double>(in.TakeU64()));
    default: return Value(in.TakeString(12));
  }
}

void ValueCodecRoundTrip(FuzzInput& in) {
  ckpt::Sink sink;
  const uint64_t count = in.TakeBounded(8);
  for (uint64_t i = 0; i < count; ++i) sink.WriteValue(FuzzValue(in));
  ckpt::Source source(sink.bytes());
  ckpt::Sink rewritten;
  for (uint64_t i = 0; i < count; ++i) {
    auto value = source.ReadValue();
    CEP_FUZZ_CHECK(value.ok(), "Value codec rejected its own output");
    rewritten.WriteValue(value.ValueOrDie());
  }
  // Byte-level comparison sidesteps NaN != NaN.
  CEP_FUZZ_CHECK(rewritten.bytes() == sink.bytes(),
                 "Value codec round-trip changed the encoding");
}

void SnapshotAssemblyPipeline(FuzzInput& in) {
  ckpt::SnapshotBuilder builder(in.TakeU64());
  const uint64_t sections = in.TakeBounded(5);
  for (uint64_t s = 0; s < sections; ++s) {
    const std::string name = in.TakeString(8);
    const std::string payload = in.TakeString(32);
    builder.AddSection(name, payload);
  }
  std::string bytes = builder.Finish();
  auto parsed = ckpt::ParseSnapshot(bytes);
  CEP_FUZZ_CHECK(parsed.ok(), "freshly built snapshot failed to parse");
  CEP_FUZZ_CHECK(parsed.ValueOrDie().sections.size() == sections,
                 "built snapshot lost sections");

  // Any actual change to the image must be rejected (CRC trailer plus
  // per-section digests): flip a few bytes or truncate, then reparse.
  const std::string original = bytes;
  if (in.TakeBool()) {
    bytes.resize(static_cast<size_t>(in.TakeBounded(bytes.size())));
  } else {
    const uint64_t flips = 1 + in.TakeBounded(3);
    for (uint64_t f = 0; f < flips; ++f) {
      const size_t at = static_cast<size_t>(in.TakeBounded(bytes.size()));
      bytes[at] = static_cast<char>(bytes[at] ^ (in.TakeByte() | 1));
    }
  }
  auto reparsed = ckpt::ParseSnapshot(bytes);
  if (bytes != original) {
    CEP_FUZZ_CHECK(!reparsed.ok(), "corrupted snapshot parsed successfully");
  }
}

}  // namespace

void RunQueryFuzz(const uint8_t* data, size_t size) {
  FuzzInput in(data, size);
  const uint8_t mode = in.TakeByte();
  const std::string text = (mode % 4 == 0) ? in.TakeRest() : AssembleQuery(in);

  auto parsed = ParseQuery(text);
  if (!parsed.ok()) return;  // rejection is the correct outcome

  // Printer fixpoint: ToString() must reparse, and the second print must be
  // byte-identical (otherwise saved queries drift on every load/save cycle).
  const std::string printed = parsed.ValueOrDie().ToString();
  auto reparsed = ParseQuery(printed);
  CEP_FUZZ_CHECK(reparsed.ok(), "ParsedQuery::ToString() output failed to parse");
  CEP_FUZZ_CHECK(reparsed.ValueOrDie().ToString() == printed,
                 "ParsedQuery::ToString() is not a fixpoint");

  auto analyzed = Analyze(parsed.MoveValueUnsafe(), FuzzRegistry());
  if (!analyzed.ok()) return;  // unknown types/attributes etc.
  if (analyzed.ValueOrDie().query.pattern.size() <= 6) {
    (void)CompileToNfa(analyzed.MoveValueUnsafe());
  }
}

void RunCsvFuzz(const uint8_t* data, size_t size) {
  FuzzInput in(data, size);
  const uint8_t mode = in.TakeByte();
  if (mode % 4 == 0) {
    const std::string raw = in.TakeRest();
    (void)SplitCsvRecord(raw);
    CsvPipeline(raw);
  } else {
    CsvPipeline(AssembleCsv(in));
  }
}

void RunSnapshotFuzz(const uint8_t* data, size_t size) {
  FuzzInput in(data, size);
  switch (in.TakeByte() % 4) {
    case 0: {
      const std::string raw = in.TakeRest();
      (void)ckpt::ParseSnapshot(raw);
      break;
    }
    case 1: {
      const std::string program = in.TakeString(64);
      const std::string bytes = in.TakeRest();
      FuzzInput ops(reinterpret_cast<const uint8_t*>(program.data()),
                    program.size());
      SourceReadProgram(ops, bytes);
      break;
    }
    case 2:
      ValueCodecRoundTrip(in);
      break;
    default:
      SnapshotAssemblyPipeline(in);
      break;
  }
}

}  // namespace fuzz
}  // namespace cep
