// Corpus-replay driver for toolchains without libFuzzer (GCC): runs
// LLVMFuzzerTestOneInput once over every file passed on the command line
// (directories are walked recursively, in sorted order, so runs are
// deterministic). Exit code 0 means every input ran clean; a crashing or
// aborting input fails the process — and the ctest entry — exactly like a
// libFuzzer finding would.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

namespace fs = std::filesystem;

void CollectInputs(const fs::path& path, std::vector<fs::path>* out) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    for (const auto& entry : fs::recursive_directory_iterator(path, ec)) {
      if (entry.is_regular_file()) out->push_back(entry.path());
    }
  } else {
    out->push_back(path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) CollectInputs(argv[i], &inputs);
  std::sort(inputs.begin(), inputs.end());

  size_t ran = 0;
  for (const auto& path : inputs) {
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 2;
    }
    std::string bytes((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    ++ran;
  }
  std::printf("replayed %zu corpus inputs clean\n", ran);
  return 0;
}
