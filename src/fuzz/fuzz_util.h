#ifndef CEPSHED_FUZZ_FUZZ_UTIL_H_
#define CEPSHED_FUZZ_FUZZ_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace cep {
namespace fuzz {

/// \brief Consuming cursor over fuzzer-provided bytes.
///
/// Every accessor is total: once the input is exhausted it keeps returning
/// zeros/empties instead of failing, so a target's control flow is a pure
/// function of the bytes and shrinking a crashing input stays meaningful.
class FuzzInput {
 public:
  FuzzInput(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  bool empty() const { return pos_ == size_; }

  uint8_t TakeByte();
  uint64_t TakeU64();
  int64_t TakeI64() { return static_cast<int64_t>(TakeU64()); }
  /// Uniform-ish pick in [0, n); returns 0 for n == 0.
  uint64_t TakeBounded(uint64_t n);
  bool TakeBool() { return (TakeByte() & 1) != 0; }
  /// Up to `max_len` raw bytes as a string (may contain NULs).
  std::string TakeString(size_t max_len);
  /// All unconsumed bytes.
  std::string TakeRest();

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Fuzz-target bodies, shared between the libFuzzer entry points and the
// corpus-replay driver. Each consumes arbitrary bytes and must never crash:
// malformed inputs surface as Status errors inside, and violated round-trip
// properties abort() so both drivers report them as findings.

/// Query pipeline: lexer + parser + analyzer (+ NFA compile for small
/// patterns), plus the parse -> ToString -> reparse fixpoint property.
void RunQueryFuzz(const uint8_t* data, size_t size);

/// CSV ingestion: SplitCsvRecord, strict and quarantining ReadEventsCsv
/// (quoted/multi-line records), plus a write -> reread round-trip property.
void RunCsvFuzz(const uint8_t* data, size_t size);

/// Checkpoint codec: range-checked Source reads, Value round-trips, and
/// ParseSnapshot over raw, assembled-valid, and assembled-then-corrupted
/// snapshot images.
void RunSnapshotFuzz(const uint8_t* data, size_t size);

}  // namespace fuzz
}  // namespace cep

#endif  // CEPSHED_FUZZ_FUZZ_UTIL_H_
