#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <ostream>
#include <tuple>

#include "common/string_util.h"

namespace cep {
namespace obs {

namespace {

int NameCmp(const char* a, const char* b) {
  if (a == b) return 0;
  return std::strcmp(a == nullptr ? "" : a, b == nullptr ? "" : b);
}

std::atomic<uint64_t> g_next_tracer_id{1};

}  // namespace

bool TraceSpan::operator<(const TraceSpan& other) const {
  if (ts_us != other.ts_us) return ts_us < other.ts_us;
  if (tid != other.tid) return tid < other.tid;
  const int name_cmp = NameCmp(name, other.name);
  if (name_cmp != 0) return name_cmp < 0;
  if (ph != other.ph) return ph < other.ph;
  if (dur_us != other.dur_us) return dur_us < other.dur_us;
  const int arg_cmp = NameCmp(arg_name, other.arg_name);
  if (arg_cmp != 0) return arg_cmp < 0;
  return arg < other.arg;
}

bool TraceSpan::operator==(const TraceSpan& other) const {
  return ts_us == other.ts_us && tid == other.tid && ph == other.ph &&
         dur_us == other.dur_us && arg == other.arg &&
         NameCmp(name, other.name) == 0 &&
         NameCmp(arg_name, other.arg_name) == 0;
}

Tracer::Tracer(size_t capacity_per_thread)
    : capacity_(capacity_per_thread == 0 ? 1 : capacity_per_thread),
      id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() = default;

Tracer::Buffer* Tracer::ThreadBuffer() {
  // Per-thread cache of (tracer id -> buffer). Tracer ids are process-unique
  // and never reused, so a stale entry for a destroyed tracer can never
  // match a live one; the handful of stale slots a thread accumulates over
  // its lifetime is noise.
  struct CacheEntry {
    uint64_t tracer_id;
    Buffer* buffer;
  };
  static thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& entry : cache) {
    if (entry.tracer_id == id_) return entry.buffer;
  }
  Buffer* buffer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<Buffer>());
    buffer = buffers_.back().get();
    buffer->spans.reserve(capacity_ < 4096 ? capacity_ : 4096);
  }
  cache.push_back(CacheEntry{id_, buffer});
  return buffer;
}

void Tracer::Record(const TraceSpan& span) {
  Buffer* buffer = ThreadBuffer();
  if (buffer->spans.size() < capacity_) {
    buffer->spans.push_back(span);
    return;
  }
  buffer->spans[buffer->next] = span;
  buffer->next = (buffer->next + 1) % capacity_;
  ++buffer->dropped;
}

void Tracer::Span(const char* name, uint64_t ts_us, uint64_t dur_us,
                  uint32_t tid, const char* arg_name, uint64_t arg) {
  TraceSpan span;
  span.name = name;
  span.ts_us = ts_us;
  span.dur_us = dur_us;
  span.tid = tid;
  span.ph = 'X';
  span.arg_name = arg_name;
  span.arg = arg;
  Record(span);
}

void Tracer::Instant(const char* name, uint64_t ts_us, uint32_t tid,
                     const char* arg_name, uint64_t arg) {
  TraceSpan span;
  span.name = name;
  span.ts_us = ts_us;
  span.tid = tid;
  span.ph = 'i';
  span.arg_name = arg_name;
  span.arg = arg;
  Record(span);
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->spans.size();
  return total;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->dropped;
  return total;
}

std::vector<TraceSpan> Tracer::SortedSpans() const {
  std::vector<TraceSpan> spans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t total = 0;
    for (const auto& buffer : buffers_) total += buffer->spans.size();
    spans.reserve(total);
    for (const auto& buffer : buffers_) {
      spans.insert(spans.end(), buffer->spans.begin(), buffer->spans.end());
    }
  }
  std::sort(spans.begin(), spans.end());
  return spans;
}

std::string Tracer::ToJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& span : SortedSpans()) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("{\"name\":\"%s\",\"ph\":\"%c\",\"pid\":0,\"tid\":%u",
                     span.name, span.ph, span.tid);
    out += StrFormat(",\"ts\":%llu",
                     static_cast<unsigned long long>(span.ts_us));
    if (span.ph == 'X') {
      out += StrFormat(",\"dur\":%llu",
                       static_cast<unsigned long long>(span.dur_us));
    }
    if (span.ph == 'i') out += ",\"s\":\"t\"";
    if (span.arg_name != nullptr) {
      out += StrFormat(",\"args\":{\"%s\":%llu}", span.arg_name,
                       static_cast<unsigned long long>(span.arg));
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status Tracer::WriteJson(std::ostream& out) const {
  out << ToJson();
  if (!out.good()) return Status::IoError("trace JSON write failed");
  return Status::OK();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buffer : buffers_) {
    buffer->spans.clear();
    buffer->next = 0;
    buffer->dropped = 0;
  }
}

}  // namespace obs
}  // namespace cep
