#include "obs/audit.h"

#include <ostream>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace cep {
namespace obs {

std::string ShedDecisionRecord::ToJson() const {
  std::string out = "{";
  out += StrFormat("\"seq\":%llu,\"engine\":%u,\"episode\":%llu",
                   static_cast<unsigned long long>(sequence), engine_id,
                   static_cast<unsigned long long>(episode));
  out += StrFormat(",\"run_id\":%llu,\"state\":%d",
                   static_cast<unsigned long long>(run_id), nfa_state);
  out += StrFormat(",\"shed_ts\":%lld,\"run_start_ts\":%lld",
                   static_cast<long long>(shed_ts),
                   static_cast<long long>(run_start_ts));
  out += StrFormat(",\"time_slice\":%d", time_slice);
  out += ",\"c_plus\":" + FormatMetricValue(c_plus);
  out += ",\"c_minus\":" + FormatMetricValue(c_minus);
  out += ",\"score\":" + FormatMetricValue(score);
  out += ",\"shed_fraction\":" + FormatMetricValue(shed_fraction);
  out += StrFormat(",\"degradation_level\":%u",
                   static_cast<unsigned>(degradation_level));
  out += "}";
  return out;
}

ShedAuditLog::ShedAuditLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_ < 1024 ? capacity_ : 1024);
}

uint64_t ShedAuditLog::Append(ShedDecisionRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.sequence = appended_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
    next_ = (next_ + 1) % capacity_;
  }
  return appended_++;
}

size_t ShedAuditLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t ShedAuditLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_ - ring_.size();
}

uint64_t ShedAuditLog::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

std::vector<ShedDecisionRecord> ShedAuditLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ShedDecisionRecord> out;
  out.reserve(ring_.size());
  // Oldest first: [next_, end) then [0, next_) once the ring has wrapped.
  for (size_t i = next_; i < ring_.size(); ++i) out.push_back(ring_[i]);
  for (size_t i = 0; i < next_; ++i) out.push_back(ring_[i]);
  return out;
}

std::string ShedAuditLog::ToJsonl() const {
  std::string out;
  for (const ShedDecisionRecord& record : Snapshot()) {
    out += record.ToJson();
    out += "\n";
  }
  return out;
}

Status ShedAuditLog::WriteJsonl(std::ostream& out) const {
  out << ToJsonl();
  if (!out.good()) return Status::IoError("audit JSONL write failed");
  return Status::OK();
}

void ShedAuditLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  appended_ = 0;
}

Status ShedAuditLog::SerializeTo(ckpt::Sink& sink) const {
  // The logical state is (appended_, retained records oldest-first); the
  // ring's physical rotation is not observable and is normalised away.
  std::vector<ShedDecisionRecord> records = Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  sink.WriteU64(appended_);
  sink.WriteU64(records.size());
  for (const ShedDecisionRecord& r : records) {
    sink.WriteU64(r.sequence);
    sink.WriteU32(r.engine_id);
    sink.WriteU64(r.episode);
    sink.WriteU64(r.run_id);
    sink.WriteI64(r.nfa_state);
    sink.WriteI64(r.shed_ts);
    sink.WriteI64(r.run_start_ts);
    sink.WriteI64(r.time_slice);
    sink.WriteDouble(r.c_plus);
    sink.WriteDouble(r.c_minus);
    sink.WriteDouble(r.score);
    sink.WriteDouble(r.shed_fraction);
    sink.WriteU8(r.degradation_level);
  }
  return Status::OK();
}

Status ShedAuditLog::RestoreFrom(ckpt::Source& source) {
  std::lock_guard<std::mutex> lock(mu_);
  CEP_ASSIGN_OR_RETURN(uint64_t appended, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(uint64_t count, source.ReadU64());
  if (count > capacity_) {
    return Status::InvalidArgument(
        "audit snapshot retains " + std::to_string(count) +
        " records but log capacity is " + std::to_string(capacity_));
  }
  ring_.clear();
  ring_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ShedDecisionRecord r;
    CEP_ASSIGN_OR_RETURN(r.sequence, source.ReadU64());
    CEP_ASSIGN_OR_RETURN(r.engine_id, source.ReadU32());
    CEP_ASSIGN_OR_RETURN(r.episode, source.ReadU64());
    CEP_ASSIGN_OR_RETURN(r.run_id, source.ReadU64());
    CEP_ASSIGN_OR_RETURN(int64_t nfa_state, source.ReadI64());
    r.nfa_state = static_cast<int>(nfa_state);
    CEP_ASSIGN_OR_RETURN(r.shed_ts, source.ReadI64());
    CEP_ASSIGN_OR_RETURN(r.run_start_ts, source.ReadI64());
    CEP_ASSIGN_OR_RETURN(int64_t time_slice, source.ReadI64());
    r.time_slice = static_cast<int>(time_slice);
    CEP_ASSIGN_OR_RETURN(r.c_plus, source.ReadDouble());
    CEP_ASSIGN_OR_RETURN(r.c_minus, source.ReadDouble());
    CEP_ASSIGN_OR_RETURN(r.score, source.ReadDouble());
    CEP_ASSIGN_OR_RETURN(r.shed_fraction, source.ReadDouble());
    CEP_ASSIGN_OR_RETURN(r.degradation_level, source.ReadU8());
    ring_.push_back(std::move(r));
  }
  // Oldest record sits at index 0, so the overwrite cursor starts there.
  next_ = 0;
  appended_ = appended;
  return Status::OK();
}

}  // namespace obs
}  // namespace cep
