#ifndef CEPSHED_OBS_AUDIT_H_
#define CEPSHED_OBS_AUDIT_H_

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "ckpt/state_component.h"
#include "common/status.h"
#include "common/time.h"
#include "obs/obs_config.h"

namespace cep {
namespace obs {

/// \brief One shedding decision: everything the engine and shedder knew
/// about a victim at the moment it was discarded.
///
/// This is the record pSPICE/hSPICE-style quality analyses need: joining the
/// per-victim model scores against an oracle (an exhaustive run of the same
/// stream) attributes recall loss to individual decisions instead of to the
/// aggregate runs_shed counter. All fields are deterministic for a fixed
/// seed — the audit trail is part of the engine's reproducibility surface.
struct ShedDecisionRecord {
  uint64_t sequence = 0;      ///< decision ordinal, assigned by the log
  uint32_t engine_id = 0;     ///< query index under MultiEngine (else 0)
  uint64_t episode = 0;       ///< shed-trigger ordinal within the engine
  uint64_t run_id = 0;        ///< victim's Run::id()
  int nfa_state = 0;          ///< NFA state the victim occupied
  Timestamp shed_ts = 0;      ///< stream time of the decision
  Timestamp run_start_ts = 0; ///< victim's first-event timestamp
  int time_slice = -1;        ///< shedder's relative-time slice (-1: none)
  double c_plus = 0.0;        ///< contribution estimate C+(r|t) (SBLS)
  double c_minus = 0.0;       ///< cost estimate C-(r|t) (SBLS)
  double score = 0.0;         ///< combined ranking score (lowest shed first)
  /// Victims selected this episode / live runs at selection time.
  double shed_fraction = 0.0;
  uint8_t degradation_level = 0;  ///< DegradationLevel at the decision

  /// One JSON object, no trailing newline (JSONL export writes one per
  /// line). Field order is fixed; doubles format via FormatMetricValue, so
  /// equal records serialize byte-identically.
  std::string ToJson() const;
};

/// \brief Bounded ring buffer of shedding decisions.
///
/// Appends are O(1) and mutex-guarded (shedding episodes are rare relative
/// to events, so the lock never contends with anything hot); once `capacity`
/// records are held the oldest are overwritten and counted in dropped().
/// Export order is oldest-to-newest, deterministic for deterministic inputs.
///
/// Checkpointable: the retained records and total-appended counter are part
/// of the engine's durable state, so a restored engine's JSONL export is
/// byte-identical to the uninterrupted run's.
class ShedAuditLog : public ckpt::StateComponent {
 public:
  explicit ShedAuditLog(size_t capacity = 1 << 16);

  /// Appends a record, stamping its `sequence`. Returns the stamped ordinal.
  uint64_t Append(ShedDecisionRecord record);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Records overwritten after the ring filled.
  uint64_t dropped() const;
  /// Total records ever appended (== size() + dropped()).
  uint64_t total_appended() const;

  /// Snapshot of the retained records, oldest first.
  std::vector<ShedDecisionRecord> Snapshot() const;

  /// JSONL: one record per line, oldest first.
  std::string ToJsonl() const;
  Status WriteJsonl(std::ostream& out) const;

  void Clear();

  Status SerializeTo(ckpt::Sink& sink) const override;
  Status RestoreFrom(ckpt::Source& source) override;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::vector<ShedDecisionRecord> ring_;
  size_t next_ = 0;        // ring slot for the next append
  uint64_t appended_ = 0;  // total appends == next sequence number
};

}  // namespace obs
}  // namespace cep

#endif  // CEPSHED_OBS_AUDIT_H_
