#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace cep {
namespace obs {

namespace {

/// Canonical map key for (name, labels). '\x1f' (unit separator) cannot
/// appear in metric names or sane label values, so the encoding is
/// collision-free in practice.
std::string EntryKey(const std::string& name, const LabelSet& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1f';
    key += v;
  }
  return key;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// `{key="value",...}` including the braces; empty string for no labels.
std::string PromLabelBlock(const LabelSet& labels,
                           const std::string& extra_key = "",
                           const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + v + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

std::string JsonLabelObject(const LabelSet& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
  }
  out += "}";
  return out;
}

const char* KindName(bool is_counter, bool is_gauge) {
  return is_counter ? "counter" : (is_gauge ? "gauge" : "histogram");
}

/// Quantiles exported for every histogram (Prometheus summary-style samples
/// on the family name, p50/p90/p99 fields in JSON).
constexpr std::pair<const char*, double> kExportedQuantiles[] = {
    {"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}};

}  // namespace

std::string FormatMetricValue(double value) {
  if (std::isfinite(value) && std::nearbyint(value) == value &&
      std::fabs(value) < 9.007199254740992e15) {
    return StrFormat("%.0f", value);
  }
  return StrFormat("%.9g", value);
}

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(HistogramSpec spec) : spec_(std::move(spec)) {
  if (spec_.num_buckets == 0) spec_.num_buckets = 1;
  if (spec_.growth <= 1.0) spec_.growth = 2.0;
  if (spec_.base <= 0.0) spec_.base = 1.0;
  bounds_.reserve(spec_.num_buckets);
  double bound = spec_.base;
  for (size_t i = 0; i < spec_.num_buckets; ++i) {
    bounds_.push_back(bound);
    bound *= spec_.growth;
  }
  buckets_ =
      std::make_unique<std::atomic<uint64_t>[]>(spec_.num_buckets + 1);
  for (size_t i = 0; i <= spec_.num_buckets; ++i) buckets_[i].store(0);
}

void Histogram::Record(double value) {
  // Bucket search is a linear scan: the bounds are few, ascending, and in
  // L1, and typical latencies land in the first handful of buckets — this
  // beats a log() call and is exact.
  size_t index = bounds_.size();  // +Inf overflow by default
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      index = i;
      break;
    }
  }
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

uint64_t Histogram::count() const {
  // Derived on read so Record() stays two atomic adds; exports are rare.
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Quantile(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Snapshot the buckets once so a concurrent Record() cannot move the
  // cumulative walk under us mid-scan.
  const size_t n = bounds_.size();
  std::vector<uint64_t> counts(n + 1);
  uint64_t total = 0;
  for (size_t i = 0; i <= n; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < n; ++i) {
    if (counts[i] > 0 &&
        rank <= static_cast<double>(cumulative + counts[i])) {
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double fraction = (rank - static_cast<double>(cumulative)) /
                              static_cast<double>(counts[i]);
      return lower + (bounds_[i] - lower) * fraction;
    }
    cumulative += counts[i];
  }
  // Rank lies in the +Inf bucket: the best finite answer is the last bound.
  return bounds_.back();
}

void Histogram::CopyFrom(const Histogram& other) {
  const size_t n = std::min(bounds_.size(), other.bounds_.size());
  for (size_t i = 0; i <= n; ++i) {
    buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
  sum_.store(other.sum(), std::memory_order_relaxed);
}

void Histogram::MergeFrom(const Histogram& other) {
  const size_t n = std::min(bounds_.size(), other.bounds_.size());
  for (size_t i = 0; i <= n; ++i) {
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0.0, std::memory_order_relaxed);
}

void Histogram::SerializeTo(ckpt::Sink& sink) const {
  sink.WriteU32(static_cast<uint32_t>(bounds_.size()));
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    sink.WriteU64(buckets_[i].load(std::memory_order_relaxed));
  }
  sink.WriteDouble(sum_.load(std::memory_order_relaxed));
}

Status Histogram::RestoreFrom(ckpt::Source& source) {
  CEP_ASSIGN_OR_RETURN(uint32_t num_buckets, source.ReadU32());
  if (num_buckets != bounds_.size()) {
    return Status::InvalidArgument(
        "histogram bucket count mismatch: snapshot has " +
        std::to_string(num_buckets) + ", spec has " +
        std::to_string(bounds_.size()));
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    CEP_ASSIGN_OR_RETURN(uint64_t count, source.ReadU64());
    buckets_[i].store(count, std::memory_order_relaxed);
  }
  CEP_ASSIGN_OR_RETURN(double sum, source.ReadDouble());
  sum_.store(sum, std::memory_order_relaxed);
  return Status::OK();
}

// --- Registry ---------------------------------------------------------------

Registry::Entry* Registry::FindOrCreate(Kind kind, const std::string& name,
                                        const std::string& help,
                                        LabelSet labels,
                                        const HistogramSpec* spec) {
  std::sort(labels.begin(), labels.end());
  const std::string key = EntryKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) return &it->second;
  Entry entry;
  entry.kind = kind;
  entry.name = name;
  entry.help = help;
  entry.labels = std::move(labels);
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<Histogram>(
          spec != nullptr ? *spec : HistogramSpec{});
      break;
  }
  return &entries_.emplace(key, std::move(entry)).first->second;
}

Counter* Registry::GetCounter(const std::string& name, const std::string& help,
                              LabelSet labels) {
  return FindOrCreate(Kind::kCounter, name, help, std::move(labels), nullptr)
      ->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& help,
                          LabelSet labels) {
  return FindOrCreate(Kind::kGauge, name, help, std::move(labels), nullptr)
      ->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& help, HistogramSpec spec,
                                  LabelSet labels) {
  return FindOrCreate(Kind::kHistogram, name, help, std::move(labels), &spec)
      ->histogram.get();
}

size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string Registry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  const std::string* last_family = nullptr;
  for (const auto& [key, entry] : entries_) {
    // One HELP/TYPE block per family (entries with the same name but
    // different labels are adjacent in map order).
    if (last_family == nullptr || *last_family != entry.name) {
      out += "# HELP " + entry.name + " " + entry.help + "\n";
      out += StrFormat("# TYPE %s %s\n", entry.name.c_str(),
                       KindName(entry.kind == Kind::kCounter,
                                entry.kind == Kind::kGauge));
      last_family = &entry.name;
    }
    switch (entry.kind) {
      case Kind::kCounter:
        out += entry.name + PromLabelBlock(entry.labels) + " " +
               StrFormat("%llu",
                         static_cast<unsigned long long>(
                             entry.counter->value())) +
               "\n";
        break;
      case Kind::kGauge:
        out += entry.name + PromLabelBlock(entry.labels) + " " +
               FormatMetricValue(entry.gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.num_buckets(); ++i) {
          cumulative += h.bucket_count(i);
          out += entry.name + "_bucket" +
                 PromLabelBlock(entry.labels, "le",
                                FormatMetricValue(h.upper_bound(i))) +
                 " " + StrFormat("%llu", static_cast<unsigned long long>(
                                             cumulative)) +
                 "\n";
        }
        cumulative += h.bucket_count(h.num_buckets());
        out += entry.name + "_bucket" +
               PromLabelBlock(entry.labels, "le", "+Inf") + " " +
               StrFormat("%llu", static_cast<unsigned long long>(cumulative)) +
               "\n";
        out += entry.name + "_sum" + PromLabelBlock(entry.labels) + " " +
               FormatMetricValue(h.sum()) + "\n";
        out += entry.name + "_count" + PromLabelBlock(entry.labels) + " " +
               StrFormat("%llu",
                         static_cast<unsigned long long>(h.count())) +
               "\n";
        // Interpolated quantiles as plain samples on the family name (the
        // summary-style convention); derived from the buckets above, so
        // they add no new state and stay byte-stable.
        for (const auto& [label, q] : kExportedQuantiles) {
          out += entry.name + PromLabelBlock(entry.labels, "quantile", label) +
                 " " + FormatMetricValue(h.Quantile(q)) + "\n";
        }
        break;
      }
    }
  }
  return out;
}

std::string Registry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& [key, entry] : entries_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(entry.name) + "\",\"type\":\"";
    out += KindName(entry.kind == Kind::kCounter, entry.kind == Kind::kGauge);
    out += "\",\"labels\":" + JsonLabelObject(entry.labels);
    switch (entry.kind) {
      case Kind::kCounter:
        out += StrFormat(",\"value\":%llu", static_cast<unsigned long long>(
                                                entry.counter->value()));
        break;
      case Kind::kGauge:
        out += ",\"value\":" + FormatMetricValue(entry.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out += ",\"unit\":\"" + JsonEscape(h.spec().unit) + "\"";
        out += StrFormat(",\"count\":%llu",
                         static_cast<unsigned long long>(h.count()));
        out += ",\"sum\":" + FormatMetricValue(h.sum());
        out += ",\"p50\":" + FormatMetricValue(h.Quantile(0.5));
        out += ",\"p90\":" + FormatMetricValue(h.Quantile(0.9));
        out += ",\"p99\":" + FormatMetricValue(h.Quantile(0.99));
        out += ",\"buckets\":[";
        for (size_t i = 0; i < h.num_buckets(); ++i) {
          if (i > 0) out += ",";
          out += "{\"le\":" + FormatMetricValue(h.upper_bound(i)) +
                 StrFormat(",\"count\":%llu",
                           static_cast<unsigned long long>(
                               h.bucket_count(i))) +
                 "}";
        }
        out += StrFormat(",{\"le\":\"+Inf\",\"count\":%llu}",
                         static_cast<unsigned long long>(
                             h.bucket_count(h.num_buckets())));
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace cep
