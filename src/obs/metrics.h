#ifndef CEPSHED_OBS_METRICS_H_
#define CEPSHED_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/io.h"
#include "common/status.h"
#include "obs/obs_config.h"

namespace cep {
namespace obs {

/// Metric labels as (key, value) pairs. Canonicalised (sorted by key) on
/// registration so that label order never changes a metric's identity or its
/// export position.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonically increasing counter. All operations are atomic and
/// safe to call from any thread; relaxed ordering is sufficient because
/// metric values carry no synchronisation obligations.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Snapshot-style assignment (used when mirroring an external counter,
  /// e.g. an EngineMetrics field, into the registry).
  void Set(uint64_t value) { value_.store(value, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Point-in-time measurement that may go up or down.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Shape of a histogram's fixed log-scaled buckets: bucket i covers
/// values <= base · growth^i, with one implicit overflow (+Inf) bucket. The
/// defaults (1, 2.0, 26) span 1µs .. ~33s of latency at power-of-two
/// resolution — fixed bounds keep exports byte-stable across runs and make
/// histograms from different engines mergeable.
struct HistogramSpec {
  double base = 1.0;
  double growth = 2.0;
  size_t num_buckets = 26;  ///< finite buckets; +Inf overflow is extra
  std::string unit = "us";
};

/// \brief Fixed-bucket histogram with atomic recording. Record() is two
/// relaxed atomic adds (bucket + sum; the count is derived from the buckets
/// on read) and costs tens of nanoseconds — cheap enough for per-event
/// instrumentation.
class Histogram {
 public:
  explicit Histogram(HistogramSpec spec = HistogramSpec{});

  void Record(double value);

  uint64_t count() const;
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Interpolated quantile estimate for `q` in [0, 1], derived from the
  /// bucket counts: the bucket containing rank q·count is located by
  /// cumulative count, then the value is linearly interpolated between the
  /// bucket's lower and upper bound. Exact at bucket boundaries: when q·count
  /// equals a cumulative bucket count, the result is that bucket's upper
  /// bound. Ranks landing in the +Inf bucket clamp to the last finite bound.
  /// Returns 0 for an empty histogram. Deterministic for equal bucket state
  /// (export byte-stability relies on this).
  double Quantile(double q) const;
  size_t num_buckets() const { return bounds_.size(); }  // excludes +Inf
  /// Upper bound of finite bucket `i`.
  double upper_bound(size_t i) const { return bounds_[i]; }
  /// Observations in bucket `i`; `i == num_buckets()` is the +Inf bucket.
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  const HistogramSpec& spec() const { return spec_; }

  /// Overwrites this histogram with `other`'s contents (snapshot export of
  /// an engine-local histogram into a registry). Specs must have identical
  /// bucket shape.
  void CopyFrom(const Histogram& other);
  /// Adds `other`'s contents into this histogram (cross-engine aggregation).
  void MergeFrom(const Histogram& other);

  void Reset();

  /// Checkpoint support: bucket counts + sum. Restore requires a histogram
  /// constructed with the identical spec (bucket shape is config, not state).
  void SerializeTo(ckpt::Sink& sink) const;
  Status RestoreFrom(ckpt::Source& source);

 private:
  HistogramSpec spec_;
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // num_buckets + 1
  std::atomic<double> sum_{0.0};
};

/// \brief Thread-safe metrics registry: named counters, gauges, and
/// histograms with optional labels, exporting to Prometheus text exposition
/// and to JSON.
///
/// Get* registers on first use and returns the same instrument for the same
/// (name, labels) afterwards; returned pointers stay valid for the
/// registry's lifetime, so hot paths can cache them. Exports iterate metrics
/// in (name, labels) order — output is deterministic regardless of
/// registration order or thread interleaving.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help,
                      LabelSet labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  LabelSet labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          HistogramSpec spec = HistogramSpec{},
                          LabelSet labels = {});

  /// Prometheus text exposition format (one HELP/TYPE block per family,
  /// cumulative histogram buckets).
  std::string ToPrometheusText() const;

  /// {"metrics": [{"name": ..., "type": ..., "labels": {...}, ...}]}
  std::string ToJson() const;

  size_t size() const;

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    std::string help;
    LabelSet labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(Kind kind, const std::string& name,
                      const std::string& help, LabelSet labels,
                      const HistogramSpec* spec);

  mutable std::mutex mu_;
  // Keyed by name + '\x1f' + canonical label encoding: map order gives the
  // deterministic export order.
  std::map<std::string, Entry> entries_;
};

/// Formats a metric value: integral values print without a decimal point,
/// everything else as shortest-round-trip-ish %.9g. Deterministic for equal
/// inputs (export byte-stability relies on this).
std::string FormatMetricValue(double value);

}  // namespace obs
}  // namespace cep

#endif  // CEPSHED_OBS_METRICS_H_
