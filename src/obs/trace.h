#ifndef CEPSHED_OBS_TRACE_H_
#define CEPSHED_OBS_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/obs_config.h"

namespace cep {
namespace obs {

/// \brief One Chrome trace_event entry: a complete span (ph 'X') or an
/// instant marker (ph 'i').
///
/// `name` and `arg_name` must be string literals (or otherwise outlive the
/// tracer) — emission stores the pointer, never copies, so a span costs a
/// handful of stores.
///
/// Timestamps are microseconds on the *engine's* clock: deterministic
/// virtual time (cumulative evaluation cost) under the virtual-cost and
/// queueing latency modes, wall time under kWallClock. Virtual-time traces
/// are byte-identical across thread counts for a fixed seed; that is the
/// repo-wide determinism contract extended to observability.
struct TraceSpan {
  const char* name = "";
  uint64_t ts_us = 0;
  uint64_t dur_us = 0;
  uint32_t tid = 0;
  char ph = 'X';
  const char* arg_name = nullptr;  ///< optional single numeric argument
  uint64_t arg = 0;

  /// Total order over every field — ties sort identical spans together, so
  /// sorted output is byte-stable no matter which thread recorded what.
  bool operator<(const TraceSpan& other) const;
  bool operator==(const TraceSpan& other) const;
};

/// \brief Span collector with per-thread ring buffers.
///
/// Each recording thread appends to its own fixed-capacity ring without
/// taking any lock (the registry of buffers is mutex-guarded, but a thread
/// touches it only on its first span per tracer). When a ring is full the
/// oldest spans are overwritten and counted; because the engine emits spans
/// deterministically, the retained suffix is deterministic too.
///
/// Export gathers every buffer, sorts by the total span order, and writes
/// Chrome trace_event JSON (load in Perfetto or chrome://tracing).
class Tracer {
 public:
  explicit Tracer(size_t capacity_per_thread = 1 << 18);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Records a complete span (ph 'X').
  void Span(const char* name, uint64_t ts_us, uint64_t dur_us, uint32_t tid,
            const char* arg_name = nullptr, uint64_t arg = 0);

  /// Records an instant event (ph 'i').
  void Instant(const char* name, uint64_t ts_us, uint32_t tid,
               const char* arg_name = nullptr, uint64_t arg = 0);

  /// Retained spans across all threads.
  size_t size() const;
  /// Spans overwritten because some ring filled.
  uint64_t dropped() const;
  size_t capacity_per_thread() const { return capacity_; }

  /// Sorted snapshot of all retained spans.
  std::vector<TraceSpan> SortedSpans() const;

  /// {"traceEvents":[...],"displayTimeUnit":"ms"}
  std::string ToJson() const;
  Status WriteJson(std::ostream& out) const;

  void Clear();

 private:
  struct Buffer {
    std::vector<TraceSpan> spans;
    size_t next = 0;       // overwrite cursor once full
    uint64_t dropped = 0;  // overwritten span count
  };

  void Record(const TraceSpan& span);
  Buffer* ThreadBuffer();

  const size_t capacity_;
  const uint64_t id_;  // distinguishes tracers in the thread-local cache
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

}  // namespace obs
}  // namespace cep

#endif  // CEPSHED_OBS_TRACE_H_
