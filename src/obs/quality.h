#ifndef CEPSHED_OBS_QUALITY_H_
#define CEPSHED_OBS_QUALITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/state_component.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace cep {
namespace obs {

/// \brief Online calibration of a shedder's completion-probability model.
///
/// Every run exit with a model prediction attached becomes one observation:
/// the shedder's contribution estimate C+(r|t), clamped to [0, 1], is the
/// predicted completion probability p; whether the run actually produced a
/// match on exit is the binary outcome o. Observations accumulate into
/// fixed-width prediction buckets (predicted-vs-observed completion rate per
/// bucket), a running Brier score sum((p - o)^2)/n, and a count-weighted
/// calibration drift sum(n_b * |avg_pred_b - avg_obs_b|)/n. Shed victims are
/// recorded separately — their outcome is unobservable (the run was removed
/// before resolving), so they contribute to the shed-prediction averages but
/// never to Brier/drift.
///
/// All inputs arrive from the engine's serial merge phase in deterministic
/// run order, so state — and therefore every export — is byte-identical
/// across threads/shards/batch configurations.
class CalibrationMonitor final : public ckpt::StateComponent {
 public:
  explicit CalibrationMonitor(size_t num_buckets = 10);

  /// A run with predicted completion probability `predicted` (clamped to
  /// [0, 1] by the caller) left R(t); `completed` is true when it produced a
  /// match at exit.
  void ObserveOutcome(double predicted, bool completed);

  /// A run with prediction `predicted` was shed (outcome unobservable).
  void ObserveShed(double predicted);

  uint64_t outcomes() const { return outcomes_; }
  uint64_t shed_observations() const { return shed_count_; }
  /// Mean squared error of the predictions over observed outcomes (0 when
  /// nothing was observed yet; perfect calibration and sharpness = 0).
  double BrierScore() const;
  /// Count-weighted mean |avg_pred - avg_obs| over the buckets: 0 for a
  /// perfectly calibrated model, approaching 1 for a maximally miscalibrated
  /// one.
  double Drift() const;
  /// Mean predicted completion probability of shed victims.
  double MeanShedPrediction() const;

  size_t num_buckets() const { return buckets_.size(); }
  uint64_t bucket_count(size_t b) const { return buckets_[b].count; }
  double bucket_predicted(size_t b) const;
  double bucket_observed(size_t b) const;

  /// Mirrors the calibration state into `registry` under `labels` plus a
  /// {"shedder": shedder_name} label on the per-shedder gauges.
  void Export(Registry* registry, const LabelSet& labels,
              const std::string& shedder_name) const;

  /// JSON object fragment (no surrounding braces' key): schema documented in
  /// docs/OBSERVABILITY.md and checked by tools/validate_obs `quality`.
  std::string ToJson() const;

  // StateComponent: bucket accumulators + totals.
  Status SerializeTo(ckpt::Sink& sink) const override;
  Status RestoreFrom(ckpt::Source& source) override;

 private:
  struct Bucket {
    uint64_t count = 0;
    double sum_predicted = 0.0;
    double sum_outcome = 0.0;
  };

  size_t BucketIndex(double predicted) const;

  std::vector<Bucket> buckets_;
  uint64_t outcomes_ = 0;
  double brier_sum_ = 0.0;
  uint64_t shed_count_ = 0;
  double shed_sum_predicted_ = 0.0;
};

/// \brief Multi-window θ burn-rate tracking over the latency monitor.
///
/// Each processed event contributes one boolean sample: was µ(t) above the
/// latency bound θ after the event? Violation bits are kept in a circular
/// window (deterministic event-count windows, not wall time), and the burn
/// rate over a window is (violating fraction) / budget_fraction — 1.0 means
/// the error budget is being consumed exactly at the sustainable rate,
/// above 1.0 the SLO will be exhausted early (the standard multi-window
/// burn-rate alerting model). Time-in-violation accumulates the busy
/// microseconds of violating events, so it is deterministic under the
/// virtual-cost latency modes.
class ThetaSloMonitor final : public ckpt::StateComponent {
 public:
  /// `windows` must be strictly increasing event counts; `budget_fraction`
  /// is the tolerated violating fraction (0.01 = 99% of events within θ).
  ThetaSloMonitor(std::vector<size_t> windows, double budget_fraction);

  /// One processed event: `violating` is µ(t) > θ after the event,
  /// `busy_micros` its processing cost.
  void Observe(bool violating, double busy_micros);

  uint64_t events() const { return events_; }
  uint64_t violating_events() const { return violating_events_; }
  double time_in_violation_us() const { return time_in_violation_us_; }
  uint64_t current_streak() const { return current_streak_; }
  uint64_t longest_streak() const { return longest_streak_; }
  size_t num_windows() const { return windows_.size(); }
  size_t window(size_t w) const { return windows_[w]; }
  /// Violating events inside window `w` (clamped to events seen so far).
  uint64_t window_violations(size_t w) const { return window_violations_[w]; }
  /// (violations / effective window) / budget_fraction.
  double BurnRate(size_t w) const;

  void Export(Registry* registry, const LabelSet& labels) const;
  std::string ToJson() const;

  // StateComponent: ring bits + counters.
  Status SerializeTo(ckpt::Sink& sink) const override;
  Status RestoreFrom(ckpt::Source& source) override;

 private:
  bool Bit(uint64_t event_index) const;
  void SetBit(uint64_t event_index, bool value);

  std::vector<size_t> windows_;  ///< increasing; last is the ring capacity
  double budget_fraction_;
  std::vector<uint64_t> ring_;   ///< windows_.back() violation bits
  std::vector<uint64_t> window_violations_;  ///< one running count per window
  uint64_t events_ = 0;
  uint64_t violating_events_ = 0;
  double time_in_violation_us_ = 0.0;
  uint64_t current_streak_ = 0;
  uint64_t longest_streak_ = 0;
};

/// Wilson score interval for a binomial proportion (successes/trials) at
/// z = 1.96 (~95%). `lower`/`upper` are clamped to [0, 1]; for trials == 0
/// the interval is [0, 1] and the center 0.
struct WilsonInterval {
  double center = 0.0;
  double lower = 0.0;
  double upper = 1.0;
};
WilsonInterval WilsonScore(uint64_t successes, uint64_t trials);

}  // namespace obs
}  // namespace cep

#endif  // CEPSHED_OBS_QUALITY_H_
