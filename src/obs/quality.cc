#include "obs/quality.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace cep {
namespace obs {

// --- CalibrationMonitor -----------------------------------------------------

CalibrationMonitor::CalibrationMonitor(size_t num_buckets)
    : buckets_(num_buckets == 0 ? 1 : num_buckets) {}

size_t CalibrationMonitor::BucketIndex(double predicted) const {
  if (predicted <= 0.0) return 0;
  if (predicted >= 1.0) return buckets_.size() - 1;
  const size_t index =
      static_cast<size_t>(predicted * static_cast<double>(buckets_.size()));
  return std::min(index, buckets_.size() - 1);
}

void CalibrationMonitor::ObserveOutcome(double predicted, bool completed) {
  Bucket& bucket = buckets_[BucketIndex(predicted)];
  ++bucket.count;
  bucket.sum_predicted += predicted;
  bucket.sum_outcome += completed ? 1.0 : 0.0;
  ++outcomes_;
  const double error = predicted - (completed ? 1.0 : 0.0);
  brier_sum_ += error * error;
}

void CalibrationMonitor::ObserveShed(double predicted) {
  ++shed_count_;
  shed_sum_predicted_ += predicted;
}

double CalibrationMonitor::BrierScore() const {
  return outcomes_ == 0 ? 0.0
                        : brier_sum_ / static_cast<double>(outcomes_);
}

double CalibrationMonitor::Drift() const {
  if (outcomes_ == 0) return 0.0;
  double weighted = 0.0;
  for (const Bucket& bucket : buckets_) {
    if (bucket.count == 0) continue;
    const double n = static_cast<double>(bucket.count);
    weighted += n * std::fabs(bucket.sum_predicted / n -
                              bucket.sum_outcome / n);
  }
  return weighted / static_cast<double>(outcomes_);
}

double CalibrationMonitor::MeanShedPrediction() const {
  return shed_count_ == 0
             ? 0.0
             : shed_sum_predicted_ / static_cast<double>(shed_count_);
}

double CalibrationMonitor::bucket_predicted(size_t b) const {
  const Bucket& bucket = buckets_[b];
  return bucket.count == 0
             ? 0.0
             : bucket.sum_predicted / static_cast<double>(bucket.count);
}

double CalibrationMonitor::bucket_observed(size_t b) const {
  const Bucket& bucket = buckets_[b];
  return bucket.count == 0
             ? 0.0
             : bucket.sum_outcome / static_cast<double>(bucket.count);
}

void CalibrationMonitor::Export(Registry* registry, const LabelSet& labels,
                                const std::string& shedder_name) const {
  LabelSet shedder_labels = labels;
  shedder_labels.emplace_back("shedder", shedder_name);
  registry
      ->GetCounter("cep_calibration_outcomes_total",
                   "Run exits joined against a model prediction", labels)
      ->Set(outcomes_);
  registry
      ->GetCounter("cep_calibration_shed_predictions_total",
                   "Shed victims recorded predicted-only (outcome "
                   "unobservable)",
                   labels)
      ->Set(shed_count_);
  registry
      ->GetGauge("cep_calibration_brier_score",
                 "Brier score of the shedder's completion-probability model "
                 "over observed run outcomes (0 = perfect)",
                 shedder_labels)
      ->Set(BrierScore());
  registry
      ->GetGauge("cep_calibration_drift",
                 "Count-weighted |predicted - observed| completion rate over "
                 "prediction buckets (0 = calibrated)",
                 shedder_labels)
      ->Set(Drift());
  registry
      ->GetGauge("cep_calibration_mean_shed_prediction",
                 "Mean predicted completion probability of shed victims",
                 shedder_labels)
      ->Set(MeanShedPrediction());
  for (size_t b = 0; b < buckets_.size(); ++b) {
    LabelSet bucket_labels = labels;
    bucket_labels.emplace_back("bucket", StrFormat("%zu", b));
    registry
        ->GetGauge("cep_calibration_bucket_observed_rate",
                   "Observed completion rate per prediction bucket",
                   bucket_labels)
        ->Set(bucket_observed(b));
    registry
        ->GetGauge("cep_calibration_bucket_count",
                   "Observations per prediction bucket", bucket_labels)
        ->Set(static_cast<double>(buckets_[b].count));
  }
}

std::string CalibrationMonitor::ToJson() const {
  std::string out = "{";
  out += StrFormat("\"outcomes\":%llu",
                   static_cast<unsigned long long>(outcomes_));
  out += StrFormat(",\"shed_predictions\":%llu",
                   static_cast<unsigned long long>(shed_count_));
  out += ",\"brier_score\":" + FormatMetricValue(BrierScore());
  out += ",\"drift\":" + FormatMetricValue(Drift());
  out += ",\"mean_shed_prediction\":" + FormatMetricValue(MeanShedPrediction());
  out += ",\"buckets\":[";
  for (size_t b = 0; b < buckets_.size(); ++b) {
    if (b > 0) out += ",";
    out += StrFormat("{\"count\":%llu",
                     static_cast<unsigned long long>(buckets_[b].count));
    out += ",\"predicted\":" + FormatMetricValue(bucket_predicted(b));
    out += ",\"observed\":" + FormatMetricValue(bucket_observed(b)) + "}";
  }
  out += "]}";
  return out;
}

Status CalibrationMonitor::SerializeTo(ckpt::Sink& sink) const {
  sink.WriteU32(static_cast<uint32_t>(buckets_.size()));
  for (const Bucket& bucket : buckets_) {
    sink.WriteU64(bucket.count);
    sink.WriteDouble(bucket.sum_predicted);
    sink.WriteDouble(bucket.sum_outcome);
  }
  sink.WriteU64(outcomes_);
  sink.WriteDouble(brier_sum_);
  sink.WriteU64(shed_count_);
  sink.WriteDouble(shed_sum_predicted_);
  return Status::OK();
}

Status CalibrationMonitor::RestoreFrom(ckpt::Source& source) {
  CEP_ASSIGN_OR_RETURN(uint32_t num_buckets, source.ReadU32());
  if (num_buckets != buckets_.size()) {
    return Status::InvalidArgument(StrFormat(
        "calibration bucket count mismatch: snapshot has %u, config has %zu",
        num_buckets, buckets_.size()));
  }
  for (Bucket& bucket : buckets_) {
    CEP_ASSIGN_OR_RETURN(bucket.count, source.ReadU64());
    CEP_ASSIGN_OR_RETURN(bucket.sum_predicted, source.ReadDouble());
    CEP_ASSIGN_OR_RETURN(bucket.sum_outcome, source.ReadDouble());
  }
  CEP_ASSIGN_OR_RETURN(outcomes_, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(brier_sum_, source.ReadDouble());
  CEP_ASSIGN_OR_RETURN(shed_count_, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(shed_sum_predicted_, source.ReadDouble());
  return Status::OK();
}

// --- ThetaSloMonitor --------------------------------------------------------

ThetaSloMonitor::ThetaSloMonitor(std::vector<size_t> windows,
                                 double budget_fraction)
    : windows_(std::move(windows)),
      budget_fraction_(budget_fraction > 0.0 ? budget_fraction : 0.01) {
  if (windows_.empty()) windows_.push_back(1024);
  std::sort(windows_.begin(), windows_.end());
  ring_.assign((windows_.back() + 63) / 64, 0);
  window_violations_.assign(windows_.size(), 0);
}

bool ThetaSloMonitor::Bit(uint64_t event_index) const {
  const uint64_t pos = event_index % windows_.back();
  return (ring_[pos / 64] >> (pos % 64)) & 1;
}

void ThetaSloMonitor::SetBit(uint64_t event_index, bool value) {
  const uint64_t pos = event_index % windows_.back();
  const uint64_t mask = uint64_t{1} << (pos % 64);
  if (value) {
    ring_[pos / 64] |= mask;
  } else {
    ring_[pos / 64] &= ~mask;
  }
}

void ThetaSloMonitor::Observe(bool violating, double busy_micros) {
  // Retire the bit leaving each window before overwriting the slot: the ring
  // holds the largest window, so every smaller window's expiring bit is
  // still resident.
  for (size_t w = 0; w < windows_.size(); ++w) {
    if (events_ >= windows_[w] && Bit(events_ - windows_[w])) {
      --window_violations_[w];
    }
  }
  SetBit(events_, violating);
  ++events_;
  if (violating) {
    ++violating_events_;
    time_in_violation_us_ += busy_micros;
    ++current_streak_;
    longest_streak_ = std::max(longest_streak_, current_streak_);
    for (uint64_t& count : window_violations_) ++count;
  } else {
    current_streak_ = 0;
  }
}

double ThetaSloMonitor::BurnRate(size_t w) const {
  const uint64_t effective =
      std::min<uint64_t>(events_, windows_[w]);
  if (effective == 0) return 0.0;
  const double fraction = static_cast<double>(window_violations_[w]) /
                          static_cast<double>(effective);
  return fraction / budget_fraction_;
}

void ThetaSloMonitor::Export(Registry* registry,
                             const LabelSet& labels) const {
  registry
      ->GetCounter("cep_slo_events_total",
                   "Events observed by the theta SLO tracker", labels)
      ->Set(events_);
  registry
      ->GetCounter("cep_slo_violating_events_total",
                   "Events whose post-event latency estimate exceeded theta",
                   labels)
      ->Set(violating_events_);
  registry
      ->GetGauge("cep_slo_time_in_violation_us",
                 "Cumulative busy microseconds spent processing events while "
                 "above theta",
                 labels)
      ->Set(time_in_violation_us_);
  registry
      ->GetGauge("cep_slo_violation_streak",
                 "Current consecutive events above theta", labels)
      ->Set(static_cast<double>(current_streak_));
  registry
      ->GetGauge("cep_slo_violation_streak_max",
                 "Longest consecutive run of events above theta", labels)
      ->Set(static_cast<double>(longest_streak_));
  for (size_t w = 0; w < windows_.size(); ++w) {
    LabelSet window_labels = labels;
    window_labels.emplace_back("window",
                               StrFormat("%zu", windows_[w]));
    registry
        ->GetGauge("cep_slo_burn_rate",
                   "Theta violation rate over the window divided by the "
                   "error-budget fraction (1.0 = budget consumed exactly at "
                   "the sustainable rate)",
                   window_labels)
        ->Set(BurnRate(w));
  }
}

std::string ThetaSloMonitor::ToJson() const {
  std::string out = "{";
  out += StrFormat("\"events\":%llu",
                   static_cast<unsigned long long>(events_));
  out += StrFormat(",\"violating_events\":%llu",
                   static_cast<unsigned long long>(violating_events_));
  out += ",\"time_in_violation_us\":" +
         FormatMetricValue(time_in_violation_us_);
  out += StrFormat(",\"violation_streak\":%llu",
                   static_cast<unsigned long long>(current_streak_));
  out += StrFormat(",\"violation_streak_max\":%llu",
                   static_cast<unsigned long long>(longest_streak_));
  out += ",\"budget_fraction\":" + FormatMetricValue(budget_fraction_);
  out += ",\"burn_rates\":[";
  for (size_t w = 0; w < windows_.size(); ++w) {
    if (w > 0) out += ",";
    out += StrFormat("{\"window\":%zu,", windows_[w]);
    out += "\"burn_rate\":" + FormatMetricValue(BurnRate(w)) + "}";
  }
  out += "]}";
  return out;
}

Status ThetaSloMonitor::SerializeTo(ckpt::Sink& sink) const {
  sink.WriteU32(static_cast<uint32_t>(windows_.size()));
  for (const size_t window : windows_) {
    sink.WriteU64(window);
  }
  sink.WriteU32(static_cast<uint32_t>(ring_.size()));
  for (const uint64_t word : ring_) {
    sink.WriteU64(word);
  }
  for (const uint64_t count : window_violations_) {
    sink.WriteU64(count);
  }
  sink.WriteU64(events_);
  sink.WriteU64(violating_events_);
  sink.WriteDouble(time_in_violation_us_);
  sink.WriteU64(current_streak_);
  sink.WriteU64(longest_streak_);
  return Status::OK();
}

Status ThetaSloMonitor::RestoreFrom(ckpt::Source& source) {
  CEP_ASSIGN_OR_RETURN(uint32_t num_windows, source.ReadU32());
  if (num_windows != windows_.size()) {
    return Status::InvalidArgument(StrFormat(
        "SLO window count mismatch: snapshot has %u, config has %zu",
        num_windows, windows_.size()));
  }
  for (const size_t window : windows_) {
    CEP_ASSIGN_OR_RETURN(uint64_t stored, source.ReadU64());
    if (stored != window) {
      return Status::InvalidArgument(StrFormat(
          "SLO window mismatch: snapshot has %llu, config has %zu",
          static_cast<unsigned long long>(stored), window));
    }
  }
  CEP_ASSIGN_OR_RETURN(uint32_t ring_words, source.ReadU32());
  if (ring_words != ring_.size()) {
    return Status::InvalidArgument("SLO ring size mismatch");
  }
  for (uint64_t& word : ring_) {
    CEP_ASSIGN_OR_RETURN(word, source.ReadU64());
  }
  for (uint64_t& count : window_violations_) {
    CEP_ASSIGN_OR_RETURN(count, source.ReadU64());
  }
  CEP_ASSIGN_OR_RETURN(events_, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(violating_events_, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(time_in_violation_us_, source.ReadDouble());
  CEP_ASSIGN_OR_RETURN(current_streak_, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(longest_streak_, source.ReadU64());
  return Status::OK();
}

// --- Wilson interval --------------------------------------------------------

WilsonInterval WilsonScore(uint64_t successes, uint64_t trials) {
  WilsonInterval interval;
  if (trials == 0) return interval;
  constexpr double z = 1.959963985;  // ~95%
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  interval.center = p;
  interval.lower = std::max(0.0, center - margin);
  interval.upper = std::min(1.0, center + margin);
  return interval;
}

}  // namespace obs
}  // namespace cep
