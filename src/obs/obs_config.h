#ifndef CEPSHED_OBS_OBS_CONFIG_H_
#define CEPSHED_OBS_OBS_CONFIG_H_

/// Compile-time observability switch. The build defines CEPSHED_OBS=0
/// (cmake -DCEPSHED_OBS=OFF) to compile every piece of hot-path
/// instrumentation — histogram recording, audit appends, trace emission —
/// down to no-ops while keeping the obs types and export APIs available, so
/// callers need no #ifdefs. Default is on.
#ifndef CEPSHED_OBS
#define CEPSHED_OBS 1
#endif

namespace cep {
namespace obs {

/// True when hot-path instrumentation is compiled in. Gate per-event
/// recording with `if constexpr (obs::kEnabled)` so the disabled build pays
/// nothing — not even a branch.
inline constexpr bool kEnabled = CEPSHED_OBS != 0;

}  // namespace obs
}  // namespace cep

#endif  // CEPSHED_OBS_OBS_CONFIG_H_
