#ifndef CEPSHED_HARNESS_TABLE_PRINTER_H_
#define CEPSHED_HARNESS_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace cep {

/// \brief Fixed-width console table, used by every bench binary to print the
/// paper's tables/figures as aligned text.
class TablePrinter {
 public:
  /// Column widths grow to fit headers.
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders header, separator, and rows.
  std::string ToString() const;
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats helpers shared by benches.
std::string FormatPercent(double fraction);        ///< 0.805 -> "80.50%"
std::string FormatWithThousands(double value);     ///< 77123.4 -> "77,123"
std::string FormatDouble(double value, int digits);

}  // namespace cep

#endif  // CEPSHED_HARNESS_TABLE_PRINTER_H_
