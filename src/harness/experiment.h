#ifndef CEPSHED_HARNESS_EXPERIMENT_H_
#define CEPSHED_HARNESS_EXPERIMENT_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/engine.h"
#include "harness/accuracy.h"

namespace cep {

/// \brief Result of one engine pass over a materialised stream.
struct RunOutcome {
  EngineMetrics metrics;
  double wall_seconds = 0;
  double throughput_eps = 0;  ///< events / wall-clock second
  std::vector<Match> matches;
};

/// Runs the query once over `events`. `shedder` may be null (golden run).
Result<RunOutcome> RunOnce(const std::vector<EventPtr>& events,
                           const NfaPtr& nfa, const EngineOptions& options,
                           ShedderPtr shedder);

/// Creates a fresh shedder per repetition; `rep` seeds stochastic strategies
/// so repetitions are independent, as in the paper's 5-run averages.
using ShedderFactory = std::function<ShedderPtr(int rep)>;

/// \brief Aggregated evaluation of one shedding strategy against a golden
/// run: the paper's Table II row (accuracy + average throughput).
struct StrategySummary {
  std::string strategy;
  int repetitions = 0;
  double avg_accuracy = 0;   ///< mean recall vs golden
  double min_accuracy = 1;
  double avg_throughput_eps = 0;
  double avg_shed_triggers = 0;
  double avg_runs_shed = 0;
  double avg_events_dropped = 0;
  double false_positives = 0;  ///< must stay 0 for state-based strategies
  EngineMetrics last_metrics;  ///< metrics of the final repetition
};

/// Runs `factory`-built shedders `repetitions` times and scores each run
/// against `golden_matches`.
Result<StrategySummary> EvaluateStrategy(
    const std::vector<EventPtr>& events, const NfaPtr& nfa,
    const EngineOptions& options, const ShedderFactory& factory,
    int repetitions, const std::vector<Match>& golden_matches,
    std::string strategy_name);

/// Reads a positive scale factor from the CEPSHED_SCALE environment variable
/// (default 1.0) — benches multiply their stream sizes by it.
double BenchScaleFromEnv();

}  // namespace cep

#endif  // CEPSHED_HARNESS_EXPERIMENT_H_
