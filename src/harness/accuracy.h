#ifndef CEPSHED_HARNESS_ACCURACY_H_
#define CEPSHED_HARNESS_ACCURACY_H_

#include <vector>

#include "engine/match.h"

namespace cep {

/// \brief Output-stream difference δ(O_t, O'_t) between a golden
/// (no-shedding) run and a lossy run (paper §III).
///
/// Matches are identified by content fingerprint, compared as multisets.
/// State-based shedding cannot introduce false positives, so the paper's
/// "accuracy" is the recall of golden matches; precision is reported as a
/// sanity check (it must be 1.0 for state-based strategies).
struct AccuracyReport {
  size_t golden_matches = 0;
  size_t lossy_matches = 0;
  size_t true_positives = 0;

  /// δ as a count: matches missing from the lossy output.
  size_t false_negatives() const { return golden_matches - true_positives; }
  /// Fingerprints in the lossy output that the golden run never produced
  /// (always 0 for correct shedding; nonzero indicates an engine bug).
  size_t false_positives() const { return lossy_matches - true_positives; }

  /// The paper's accuracy metric.
  double recall() const {
    return golden_matches == 0
               ? 1.0
               : static_cast<double>(true_positives) /
                     static_cast<double>(golden_matches);
  }
  double precision() const {
    return lossy_matches == 0
               ? 1.0
               : static_cast<double>(true_positives) /
                     static_cast<double>(lossy_matches);
  }
};

AccuracyReport CompareMatches(const std::vector<Match>& golden,
                              const std::vector<Match>& lossy);

/// CompareMatches restricted to matches completed in [from, to) — i.e. whose
/// final event's timestamp falls inside the range. Used by the resilience
/// experiments to score recall separately before, during, and after an
/// injected fault storm.
AccuracyReport CompareMatchesInRange(const std::vector<Match>& golden,
                                     const std::vector<Match>& lossy,
                                     Timestamp from, Timestamp to);

}  // namespace cep

#endif  // CEPSHED_HARNESS_ACCURACY_H_
