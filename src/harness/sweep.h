#ifndef CEPSHED_HARNESS_SWEEP_H_
#define CEPSHED_HARNESS_SWEEP_H_

#include <string>
#include <vector>

namespace cep {

/// `n` evenly spaced values from `from` to `to` inclusive (n >= 2; n == 1
/// yields {from}).
std::vector<double> LinSpace(double from, double to, int n);

/// `n` geometrically spaced values from `from` to `to` inclusive; both
/// endpoints must be positive.
std::vector<double> GeomSpace(double from, double to, int n);

/// Simple ASCII line plot of (x, y) points — benches use it to render the
/// paper's Figure 1 as text.
std::string AsciiPlot(const std::vector<double>& xs,
                      const std::vector<double>& ys, int width, int height,
                      const char* x_label, const char* y_label);

}  // namespace cep

#endif  // CEPSHED_HARNESS_SWEEP_H_
