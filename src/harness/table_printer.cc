#include "harness/table_printer.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/string_util.h"

namespace cep {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::string sep = "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print(std::ostream& out) const { out << ToString(); }

std::string FormatPercent(double fraction) {
  return StrFormat("%.2f%%", fraction * 100.0);
}

std::string FormatWithThousands(double value) {
  const auto v = static_cast<long long>(std::llround(value));
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (v < 0) out += '-';
  std::reverse(out.begin(), out.end());
  return out;
}

std::string FormatDouble(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

}  // namespace cep
