#include "harness/accuracy.h"

#include <unordered_map>

namespace cep {

AccuracyReport CompareMatches(const std::vector<Match>& golden,
                              const std::vector<Match>& lossy) {
  AccuracyReport report;
  report.golden_matches = golden.size();
  report.lossy_matches = lossy.size();
  std::unordered_map<uint64_t, int> counts;
  counts.reserve(golden.size() * 2);
  for (const auto& m : golden) ++counts[m.fingerprint];
  for (const auto& m : lossy) {
    const auto it = counts.find(m.fingerprint);
    if (it != counts.end() && it->second > 0) {
      --it->second;
      ++report.true_positives;
    }
  }
  return report;
}

AccuracyReport CompareMatchesInRange(const std::vector<Match>& golden,
                                     const std::vector<Match>& lossy,
                                     Timestamp from, Timestamp to) {
  const auto in_range = [from, to](const Match& m) {
    return m.last_ts >= from && m.last_ts < to;
  };
  std::vector<Match> golden_slice;
  std::vector<Match> lossy_slice;
  for (const auto& m : golden) {
    if (in_range(m)) golden_slice.push_back(m);
  }
  for (const auto& m : lossy) {
    if (in_range(m)) lossy_slice.push_back(m);
  }
  return CompareMatches(golden_slice, lossy_slice);
}

}  // namespace cep
