#include "harness/experiment.h"

#include <chrono>
#include <cstdlib>

namespace cep {

Result<RunOutcome> RunOnce(const std::vector<EventPtr>& events,
                           const NfaPtr& nfa, const EngineOptions& options,
                           ShedderPtr shedder) {
  Engine engine(nfa, options, std::move(shedder));
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& event : events) {
    CEP_RETURN_NOT_OK(engine.ProcessEvent(event));
  }
  CEP_RETURN_NOT_OK(engine.Flush());
  const auto t1 = std::chrono::steady_clock::now();
  RunOutcome outcome;
  outcome.metrics = engine.metrics();
  outcome.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  outcome.throughput_eps =
      outcome.wall_seconds > 0
          ? static_cast<double>(events.size()) / outcome.wall_seconds
          : 0.0;
  outcome.matches = engine.TakeMatches();
  return outcome;
}

Result<StrategySummary> EvaluateStrategy(
    const std::vector<EventPtr>& events, const NfaPtr& nfa,
    const EngineOptions& options, const ShedderFactory& factory,
    int repetitions, const std::vector<Match>& golden_matches,
    std::string strategy_name) {
  StrategySummary summary;
  summary.strategy = std::move(strategy_name);
  summary.repetitions = repetitions;
  for (int rep = 0; rep < repetitions; ++rep) {
    CEP_ASSIGN_OR_RETURN(RunOutcome outcome,
                         RunOnce(events, nfa, options, factory(rep)));
    const AccuracyReport report =
        CompareMatches(golden_matches, outcome.matches);
    summary.avg_accuracy += report.recall();
    summary.min_accuracy = std::min(summary.min_accuracy, report.recall());
    summary.avg_throughput_eps += outcome.throughput_eps;
    summary.avg_shed_triggers +=
        static_cast<double>(outcome.metrics.shed_triggers);
    summary.avg_runs_shed += static_cast<double>(outcome.metrics.runs_shed);
    summary.avg_events_dropped +=
        static_cast<double>(outcome.metrics.events_dropped);
    summary.false_positives +=
        static_cast<double>(report.false_positives());
    summary.last_metrics = outcome.metrics;
  }
  const auto n = static_cast<double>(repetitions);
  summary.avg_accuracy /= n;
  summary.avg_throughput_eps /= n;
  summary.avg_shed_triggers /= n;
  summary.avg_runs_shed /= n;
  summary.avg_events_dropped /= n;
  return summary;
}

double BenchScaleFromEnv() {
  const char* raw = std::getenv("CEPSHED_SCALE");
  if (raw == nullptr) return 1.0;
  const double scale = std::atof(raw);
  return scale > 0 ? scale : 1.0;
}

}  // namespace cep
