#include "harness/sweep.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/string_util.h"

namespace cep {

std::vector<double> LinSpace(double from, double to, int n) {
  std::vector<double> out;
  if (n <= 1) {
    out.push_back(from);
    return out;
  }
  out.reserve(static_cast<size_t>(n));
  const double step = (to - from) / static_cast<double>(n - 1);
  for (int i = 0; i < n; ++i) out.push_back(from + step * i);
  return out;
}

std::vector<double> GeomSpace(double from, double to, int n) {
  std::vector<double> out;
  if (n <= 1 || from <= 0 || to <= 0) {
    out.push_back(from);
    return out;
  }
  out.reserve(static_cast<size_t>(n));
  const double ratio = std::pow(to / from, 1.0 / static_cast<double>(n - 1));
  double v = from;
  for (int i = 0; i < n; ++i) {
    out.push_back(v);
    v *= ratio;
  }
  return out;
}

std::string AsciiPlot(const std::vector<double>& xs,
                      const std::vector<double>& ys, int width, int height,
                      const char* x_label, const char* y_label) {
  if (xs.empty() || xs.size() != ys.size() || width < 8 || height < 3) {
    return "(no data)\n";
  }
  const double xmin = *std::min_element(xs.begin(), xs.end());
  const double xmax = *std::max_element(xs.begin(), xs.end());
  const double ymin = *std::min_element(ys.begin(), ys.end());
  const double ymax = *std::max_element(ys.begin(), ys.end());
  const double xspan = xmax > xmin ? xmax - xmin : 1.0;
  const double yspan = ymax > ymin ? ymax - ymin : 1.0;
  std::vector<std::string> grid(static_cast<size_t>(height),
                                std::string(static_cast<size_t>(width), ' '));
  for (size_t i = 0; i < xs.size(); ++i) {
    const int col = static_cast<int>(
        std::lround((xs[i] - xmin) / xspan * (width - 1)));
    const int row = static_cast<int>(
        std::lround((ys[i] - ymin) / yspan * (height - 1)));
    grid[static_cast<size_t>(height - 1 - row)]
        [static_cast<size_t>(col)] = '*';
  }
  std::string out;
  out += StrFormat("%s (%.4g .. %.4g)\n", y_label, ymin, ymax);
  for (const auto& line : grid) out += "  |" + line + "\n";
  out += "  +" + std::string(static_cast<size_t>(width), '-') + "\n";
  out += StrFormat("   %s (%.4g .. %.4g)\n", x_label, xmin, xmax);
  return out;
}

}  // namespace cep
