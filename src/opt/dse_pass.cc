#include <vector>

#include "opt/expr_canon.h"
#include "opt/passes.h"

namespace cep {
namespace opt {

namespace {

class DsePass final : public OptPass {
 public:
  std::string_view name() const override { return "dse"; }

  Status Run(MultiQueryIr* ir) override {
    for (QueryUnit& unit : ir->units) {
      RewriteUnit(&unit);
      ir->stats.states_eliminated += unit.states_eliminated;
      ir->stats.edges_eliminated += unit.edges_eliminated;
      ir->stats.preds_folded += unit.preds_folded;
    }
    return Status::OK();
  }

 private:
  // Folds constant predicates on one edge. Returns false when the edge can
  // never fire and is safe to delete. Deletion is only safe while every
  // predicate evaluated *before* the false one is itself a folded constant:
  // a non-constant predicate might error at runtime, and deleting the edge
  // would suppress that error (changing error-budget accounting). A false
  // constant behind such a predicate is kept instead — the edge stays
  // unfirable either way.
  static bool FoldEdge(Edge* edge, uint64_t* preds_folded) {
    // Exit predicates run first in EvalEdge and read the run's Kleene
    // contents; treat any of them as possibly-erroring.
    bool clean_prefix = edge->exit_predicates.empty();
    std::vector<const Expr*> kept;
    kept.reserve(edge->predicates.size());
    for (const Expr* pred : edge->predicates) {
      if (IsConstant(*pred)) {
        const Result<bool> verdict = EvalConstant(*pred);
        if (verdict.ok()) {
          if (verdict.ValueOrDie()) {
            ++*preds_folded;
            continue;  // tautology: dropping it changes nothing
          }
          if (clean_prefix) return false;  // statically dead edge
          // Unfirable, but an earlier predicate may error first; keep the
          // false constant so runtime evaluation order is preserved.
        }
        // Evaluation error (e.g. 1/0): keep so the engine surfaces it.
      }
      clean_prefix = false;
      kept.push_back(pred);
    }
    edge->predicates = std::move(kept);
    return true;
  }

  static void RewriteUnit(QueryUnit* unit) {
    std::vector<State> states = unit->nfa->states();
    const size_t n = states.size();

    // 1. Constant folding / statically-false edge removal.
    for (State& state : states) {
      std::vector<Edge> live;
      live.reserve(state.edges.size());
      for (Edge& edge : state.edges) {
        if (FoldEdge(&edge, &unit->preds_folded)) {
          live.push_back(std::move(edge));
        } else {
          ++unit->edges_eliminated;
        }
      }
      state.edges = std::move(live);
    }

    // 2. Reachability from the start state (forward over take targets).
    std::vector<char> from_start(n, 0);
    std::vector<int> stack = {0};
    from_start[0] = 1;
    while (!stack.empty()) {
      const int id = stack.back();
      stack.pop_back();
      for (const Edge& edge : states[id].edges) {
        if (edge.target >= 0 && !from_start[edge.target]) {
          from_start[edge.target] = 1;
          stack.push_back(edge.target);
        }
      }
    }

    // 3. Co-reachability: can the state still reach an accepting state?
    std::vector<std::vector<int>> rev(n);
    for (const State& state : states) {
      for (const Edge& edge : state.edges) {
        if (edge.target >= 0) rev[edge.target].push_back(state.id);
      }
    }
    std::vector<char> to_accept(n, 0);
    for (const State& state : states) {
      if (state.is_final) {
        to_accept[state.id] = 1;
        stack.push_back(state.id);
      }
    }
    while (!stack.empty()) {
      const int id = stack.back();
      stack.pop_back();
      for (const int pred : rev[id]) {
        if (!to_accept[pred]) {
          to_accept[pred] = 1;
          stack.push_back(pred);
        }
      }
    }

    // 4. Keep live states (start always survives: the engine needs a spawn
    // state even for a statically unsatisfiable query) and renumber.
    std::vector<int> remap(n, -1);
    int next = 0;
    for (size_t i = 0; i < n; ++i) {
      if (i == 0 || (from_start[i] && to_accept[i])) {
        remap[i] = next++;
      } else {
        ++unit->states_eliminated;
      }
    }
    if (unit->states_eliminated == 0 && unit->edges_eliminated == 0 &&
        unit->preds_folded == 0) {
      return;  // nothing changed; keep the compiler's Nfa instance
    }

    std::vector<State> out;
    out.reserve(next);
    for (size_t i = 0; i < n; ++i) {
      if (remap[i] < 0) continue;
      State state = std::move(states[i]);
      state.id = remap[i];
      std::vector<Edge> live;
      live.reserve(state.edges.size());
      for (Edge& edge : state.edges) {
        if (edge.target >= 0) {
          if (remap[edge.target] < 0) {
            // Path leads nowhere a match can come from.
            ++unit->edges_eliminated;
            continue;
          }
          edge.target = remap[edge.target];
        }
        live.push_back(std::move(edge));
      }
      state.edges = std::move(live);
      out.push_back(std::move(state));
    }
    unit->nfa =
        std::make_shared<const Nfa>(unit->nfa->analyzed_ptr(), std::move(out));
  }
};

}  // namespace

std::unique_ptr<OptPass> MakeDsePass() { return std::make_unique<DsePass>(); }

}  // namespace opt
}  // namespace cep
