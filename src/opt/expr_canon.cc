#include "opt/expr_canon.h"

#include "common/string_util.h"

namespace cep {
namespace opt {

namespace {

// One-letter tags keep canonical strings short (they are hashed and compared,
// never parsed back). Every resolved index that changes semantics must be
// encoded; symbolic names must not be.
void Canon(const Expr& expr, int normalize_var, std::string* out) {
  switch (expr.kind()) {
    case ExprKind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(expr);
      const Value& v = lit.value();
      *out += 'L';
      *out += static_cast<char>('0' + static_cast<int>(v.type()));
      *out += v.ToString();
      *out += ';';
      return;
    }
    case ExprKind::kAttrRef: {
      const auto& ref = static_cast<const AttrRefExpr&>(expr);
      if (normalize_var >= 0 && ref.var_index() == normalize_var &&
          (ref.ref_kind() == RefKind::kSingle ||
           ref.ref_kind() == RefKind::kCurrent)) {
        // The candidate event, however the query spells it.
        *out += StrFormat("@%d;", ref.attr_index());
        return;
      }
      *out += StrFormat("A%d.%d.%d;", static_cast<int>(ref.ref_kind()),
                        ref.var_index(), ref.attr_index());
      return;
    }
    case ExprKind::kCount: {
      const auto& count = static_cast<const CountExpr&>(expr);
      *out += StrFormat("C%d;", count.var_index());
      return;
    }
    case ExprKind::kAggregate: {
      const auto& agg = static_cast<const AggExpr&>(expr);
      *out += StrFormat("G%d.%d.%d;", static_cast<int>(agg.op()),
                        agg.var_index(), agg.attr_index());
      return;
    }
    case ExprKind::kUnary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      *out += StrFormat("U%d(", static_cast<int>(unary.op()));
      Canon(unary.operand(), normalize_var, out);
      *out += ')';
      return;
    }
    case ExprKind::kBinary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      *out += StrFormat("B%d(", static_cast<int>(binary.op()));
      Canon(binary.left(), normalize_var, out);
      *out += ',';
      Canon(binary.right(), normalize_var, out);
      *out += ')';
      return;
    }
    case ExprKind::kCall: {
      const auto& call = static_cast<const CallExpr&>(expr);
      *out += StrFormat("F%d(", static_cast<int>(call.builtin()));
      for (const auto& arg : call.args()) {
        Canon(*arg, normalize_var, out);
        *out += ',';
      }
      *out += ')';
      return;
    }
  }
}

/// BindingView over a single candidate event: Single/Current on any variable
/// resolve to it. Only reached through expressions that passed IsEventOnly
/// (or IsConstant), which reference nothing else.
class EventOnlyView final : public BindingView {
 public:
  explicit EventOnlyView(const Event* event) : event_(event) {}

  const Event* Single(int) const override { return event_; }
  int KleeneCount(int) const override { return event_ != nullptr ? 1 : 0; }
  const Event* KleeneAt(int, int idx) const override {
    return idx == 0 ? event_ : nullptr;
  }
  const Event* Current() const override { return event_; }

 private:
  const Event* event_;
};

}  // namespace

void CanonicalizeExpr(const Expr& expr, int normalize_var, std::string* out) {
  Canon(expr, normalize_var, out);
}

std::string CanonicalExprString(const Expr& expr, int normalize_var) {
  std::string out;
  Canon(expr, normalize_var, &out);
  return out;
}

bool IsEventOnly(const Expr& expr, int var) {
  bool event_only = true;
  VisitExpr(&expr, [&](const Expr* node) {
    switch (node->kind()) {
      case ExprKind::kAttrRef: {
        const auto& ref = static_cast<const AttrRefExpr&>(*node);
        if (!ref.resolved() || ref.var_index() != var ||
            (ref.ref_kind() != RefKind::kSingle &&
             ref.ref_kind() != RefKind::kCurrent)) {
          event_only = false;
        }
        break;
      }
      case ExprKind::kCount:
      case ExprKind::kAggregate:
        // Depend on the run's Kleene contents, not just the candidate.
        event_only = false;
        break;
      default:
        break;
    }
  });
  return event_only;
}

bool IsConstant(const Expr& expr) {
  bool constant = true;
  VisitExpr(&expr, [&](const Expr* node) {
    const ExprKind kind = node->kind();
    if (kind == ExprKind::kAttrRef || kind == ExprKind::kCount ||
        kind == ExprKind::kAggregate) {
      constant = false;
    }
  });
  return constant;
}

Result<bool> EvalEventOnly(const Expr& expr, const Event& event) {
  const EventOnlyView view(&event);
  return EvalPredicate(expr, view);
}

Result<bool> EvalConstant(const Expr& expr) {
  const EventOnlyView view(nullptr);
  return EvalPredicate(expr, view);
}

}  // namespace opt
}  // namespace cep
