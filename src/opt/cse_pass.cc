#include <vector>

#include "opt/expr_canon.h"
#include "opt/passes.h"

namespace cep {
namespace opt {

namespace {

class CsePass final : public OptPass {
 public:
  std::string_view name() const override { return "cse"; }

  Status Run(MultiQueryIr* ir) override {
    for (QueryUnit& unit : ir->units) {
      std::vector<State> states = unit.nfa->states();
      bool annotated = false;
      for (State& state : states) {
        for (Edge& edge : state.edges) {
          if (edge.predicates.empty()) continue;
          edge.shared_pred_ids.assign(edge.predicates.size(), -1);
          for (size_t j = 0; j < edge.predicates.size(); ++j) {
            // Kill edges qualify too: their predicates are the violation
            // conditions over the candidate alone.
            if (!IsEventOnly(*edge.predicates[j], edge.var_index)) continue;
            edge.shared_pred_ids[j] = ir->preds.Intern(
                edge.predicates[j], edge.event_type, edge.var_index);
            annotated = true;
          }
        }
      }
      if (annotated) {
        unit.nfa = std::make_shared<const Nfa>(unit.nfa->analyzed_ptr(),
                                               std::move(states));
      }
    }
    ir->stats.preds_interned = ir->preds.interned();
    ir->stats.preds_deduped = ir->preds.deduped();
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<OptPass> MakeCsePass() { return std::make_unique<CsePass>(); }

}  // namespace opt
}  // namespace cep
