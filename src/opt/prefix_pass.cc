#include <algorithm>
#include <map>
#include <vector>

#include "common/string_util.h"
#include "opt/expr_canon.h"
#include "opt/passes.h"

namespace cep {
namespace opt {

namespace {

// Canonical rendering of one state, position-independent except for target
// ids (which are positional, making leading-state comparison a true
// shared-prefix test). Raw variable indices are deliberate: two automata
// only merge when their whole variable layout lines up.
std::string StateCanon(const State& state) {
  std::string out = StrFormat("v%d%s%s%s{", state.var_index,
                              state.in_kleene ? "K" : "",
                              state.is_final ? "F" : "",
                              state.deferred_final ? "D" : "");
  for (const Expr* pred : state.final_predicates) {
    out += CanonicalExprString(*pred);
    out += '|';
  }
  for (const Edge& edge : state.edges) {
    out += StrFormat("e%d.%d.%d.%d.%d(", static_cast<int>(edge.kind),
                     static_cast<int>(edge.event_type), edge.var_index,
                     edge.exit_var, edge.target);
    for (const Expr* pred : edge.predicates) {
      out += CanonicalExprString(*pred);
      out += '|';
    }
    out += ';';
    for (const Expr* pred : edge.exit_predicates) {
      out += CanonicalExprString(*pred);
      out += '|';
    }
    out += ')';
  }
  out += '}';
  return out;
}

std::vector<std::string> StateCanons(const Nfa& nfa) {
  std::vector<std::string> out;
  out.reserve(nfa.num_states());
  for (const State& state : nfa.states()) out.push_back(StateCanon(state));
  return out;
}

class PrefixMergePass final : public OptPass {
 public:
  std::string_view name() const override { return "prefix-merge"; }

  Status Run(MultiQueryIr* ir) override {
    // Group mergeable units by full canonical identity (automaton +
    // emission contract + engine config). The leader is the lowest query
    // index so merge results are independent of registration order quirks.
    std::map<std::string, std::vector<size_t>> groups;
    for (size_t i = 0; i < ir->units.size(); ++i) {
      QueryUnit& unit = ir->units[i];
      unit.leader = unit.query_index;
      if (!unit.mergeable) continue;
      std::string key = StrFormat("cfg%llu|", static_cast<unsigned long long>(
                                                  unit.config_fingerprint));
      key += UnitMergeCanon(unit);
      groups[std::move(key)].push_back(i);
    }
    for (const auto& [key, members] : groups) {
      (void)key;
      if (members.size() < 2) continue;
      const size_t leader = members.front();
      ++ir->stats.merge_groups;
      for (size_t k = 1; k < members.size(); ++k) {
        ir->units[members[k]].leader = ir->units[leader].query_index;
        // Members alias the leader's automaton so every annotation later
        // passes read (shared ids, prefilter guards) is the serviced one.
        ir->units[members[k]].nfa = ir->units[leader].nfa;
        ++ir->stats.queries_merged;
      }
    }

    // Measure (for reporting) how deep the shared prefixes run between
    // *distinct* automata — the headroom a future cross-automaton fusion
    // could exploit beyond whole-query merging.
    std::vector<std::vector<std::string>> canons;
    for (const QueryUnit& unit : ir->units) {
      if (unit.leader != unit.query_index) continue;
      canons.push_back(StateCanons(*unit.nfa));
    }
    uint64_t max_depth = 0;
    for (size_t a = 0; a < canons.size(); ++a) {
      for (size_t b = a + 1; b < canons.size(); ++b) {
        if (canons[a] == canons[b]) continue;  // identical: merged or gated
        const size_t limit = std::min(canons[a].size(), canons[b].size());
        size_t depth = 0;
        while (depth < limit && canons[a][depth] == canons[b][depth]) ++depth;
        max_depth = std::max<uint64_t>(max_depth, depth);
      }
    }
    ir->stats.max_shared_prefix_depth = max_depth;
    return Status::OK();
  }
};

}  // namespace

std::string UnitMergeCanon(const QueryUnit& unit) {
  const Nfa& nfa = *unit.nfa;
  const ParsedQuery& query = nfa.query();
  std::string out =
      StrFormat("w%lld;", static_cast<long long>(query.window));
  for (const PatternVariable& var : query.pattern) {
    out += StrFormat("p%d.%d;", static_cast<int>(var.kind),
                     static_cast<int>(var.type_id));
  }
  // The RETURN clause is the output contract: the emitted complex event's
  // type name and attribute names are payload, so they participate even
  // though variable names do not.
  out += StrFormat("r'%s'(", query.return_spec.event_name.c_str());
  for (const ReturnItem& item : query.return_spec.items) {
    out += StrFormat("'%s'=", item.name.c_str());
    out += CanonicalExprString(*item.expr);
    out += ',';
  }
  out += ");";
  for (const State& state : nfa.states()) {
    out += StateCanon(state);
  }
  return out;
}

std::unique_ptr<OptPass> MakePrefixMergePass() {
  return std::make_unique<PrefixMergePass>();
}

}  // namespace opt
}  // namespace cep
