#ifndef CEPSHED_OPT_SHARED_PREDS_H_
#define CEPSHED_OPT_SHARED_PREDS_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "event/event.h"
#include "query/expr.h"

namespace cep {
namespace opt {

/// \brief One event's verdicts over the shared predicate table.
///
/// `verdicts` is indexed by predicate id; only predicates interned for the
/// event's type are evaluated (the rest read kNotEvaluated, which no edge of
/// a different type ever consults). Evaluation errors are parked per id and
/// surfaced only when an edge actually consults the predicate — exactly
/// mirroring unoptimized short-circuit semantics, where a predicate behind a
/// false one is never evaluated.
struct SharedPredRow {
  const Event* event = nullptr;
  std::vector<int8_t> verdicts;
  std::vector<std::pair<int32_t, Status>> errors;

  const Status& ErrorFor(int32_t id) const;
};

/// \brief Cross-query table of interned event-only edge predicates (CSE).
///
/// The CSE pass interns structurally-equal predicates (same canonical form,
/// same event type) under one id; MultiEngine evaluates each unique
/// predicate once per event — serially, before fan-out — and every engine
/// reads the precomputed verdict row instead of re-interpreting the
/// expression per run and per query.
class SharedPredTable {
 public:
  static constexpr int8_t kFalse = 0;
  static constexpr int8_t kTrue = 1;
  static constexpr int8_t kError = 2;
  static constexpr int8_t kNotEvaluated = 3;

  /// Interns `expr` (must be event-only for the variable the edge binds;
  /// see IsEventOnly) under its canonical form + `type`. Returns the
  /// predicate id; structurally-equal predicates share one id.
  int32_t Intern(const Expr* expr, EventTypeId type, int normalize_var);

  size_t size() const { return preds_.size(); }
  uint64_t interned() const { return interned_; }
  /// Intern calls that hit an existing entry (cross-query duplicates).
  uint64_t deduped() const { return deduped_; }
  /// Predicate evaluations performed by Begin{Event,Batch} so far.
  uint64_t evals_done() const { return evals_done_; }
  void set_evals_done(uint64_t v) { evals_done_ = v; }

  const Expr* expr(int32_t id) const { return preds_[id].expr; }
  EventTypeId pred_type(int32_t id) const { return preds_[id].type; }
  const std::string& canon(int32_t id) const { return preds_[id].canon; }

  /// Evaluates the verdict rows for one event / a batch of events. Must be
  /// called serially before engines fan out; rows stay valid (and may be
  /// read concurrently) until the next Begin call.
  void BeginEvent(const Event& event);
  void BeginBatch(std::span<const EventPtr> events);

  /// Verdict row for `event`, or nullptr when the event was not part of the
  /// last Begin call (e.g. a standalone engine driving itself).
  const SharedPredRow* RowFor(const Event* event) const;

  /// Uncached single-predicate evaluation (ingestion-side prefilter, which
  /// runs before rows exist). Errors conservatively evaluate to "true" so
  /// the event is kept and the engines surface the error themselves.
  bool EvalForIngest(int32_t id, const Event& event) const;

 private:
  struct PredInfo {
    const Expr* expr;
    EventTypeId type;
    std::string canon;
  };

  void FillRow(SharedPredRow* row, const Event& event);

  std::vector<PredInfo> preds_;
  std::map<std::pair<EventTypeId, std::string>, int32_t> by_canon_;
  std::map<EventTypeId, std::vector<int32_t>> by_type_;
  uint64_t interned_ = 0;
  uint64_t deduped_ = 0;
  uint64_t evals_done_ = 0;

  std::vector<SharedPredRow> rows_;
  std::unordered_map<const Event*, size_t> row_index_;
};

}  // namespace opt
}  // namespace cep

#endif  // CEPSHED_OPT_SHARED_PREDS_H_
