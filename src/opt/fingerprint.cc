#include "opt/fingerprint.h"

#include "common/hash.h"

namespace cep {
namespace opt {

namespace {

uint64_t Bits(double d) {
  uint64_t out;
  static_assert(sizeof(out) == sizeof(d));
  __builtin_memcpy(&out, &d, sizeof(out));
  return out;
}

}  // namespace

uint64_t FingerprintEngineOptions(const EngineOptions& o) {
  uint64_t h = 0x0c1e0b75;  // arbitrary non-zero seed
  const auto add = [&h](uint64_t v) { h = HashCombine(h, v); };
  add(static_cast<uint64_t>(o.selection));
  add(static_cast<uint64_t>(o.latency_mode));
  add(Bits(o.latency_threshold_micros));
  add(Bits(o.virtual_ns_per_op));
  add(Bits(o.queue_time_compression));
  add(o.latency_window_events);
  add(o.shed_cooldown_events);
  add(static_cast<uint64_t>(o.shed_amount.mode));
  add(Bits(o.shed_amount.fraction));
  add(Bits(o.shed_amount.adaptive_gain));
  add(Bits(o.shed_amount.max_fraction));
  add(o.shed_amount.min_victims);
  add(o.max_runs);
  add(o.collect_matches ? 1 : 0);
  add(o.degradation.enabled ? 1 : 0);
  add(Bits(o.degradation.shedding_enter_ratio));
  add(Bits(o.degradation.emergency_enter_ratio));
  add(Bits(o.degradation.bypass_enter_ratio));
  add(Bits(o.degradation.hysteresis));
  add(o.degradation.cooldown_events);
  add(o.degradation.run_bytes_budget);
  add(o.degradation.error_streak_bypass);
  add(Bits(o.degradation.emergency_drop_probability));
  add(o.degradation.seed);
  add(o.error_budget.enabled ? 1 : 0);
  add(o.error_budget.max_consecutive_errors);
  // parallel.*, batch_size, and checkpoint.* are deliberately excluded: the
  // engine guarantees identical results and snapshot bytes across thread,
  // shard, batch, and checkpoint-cadence settings, so they must not affect
  // merge eligibility or the snapshot-embedded optimizer digest (a snapshot
  // written on 4 threads restores onto 1).
  add(o.quality.shadow.sample_every);
  add(static_cast<uint64_t>(o.quality.shadow.span_width));
  add(o.quality.shadow.seed);
  add(o.quality.shadow.max_ghost_runs);
  add(o.quality.shadow.window_spans);
  add(o.quality.calibration.enabled ? 1 : 0);
  add(o.quality.calibration.num_buckets);
  add(o.quality.slo.enabled ? 1 : 0);
  add(Bits(o.quality.slo.budget_fraction));
  for (const size_t w : o.quality.slo.windows) add(w);
  return h;
}

}  // namespace opt
}  // namespace cep
