#ifndef CEPSHED_OPT_PASS_MANAGER_H_
#define CEPSHED_OPT_PASS_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "opt/pass.h"

namespace cep {
namespace opt {

/// Captured IR rendering around one pass (only when OptOptions::dump_ir).
struct PassDump {
  std::string pass;
  std::string before;
  std::string after;
};

/// \brief Runs a fixed sequence of passes over a MultiQueryIr, optionally
/// capturing a deterministic before/after dump per pass (opt_tool goldens,
/// --opt-dump debugging).
class PassManager {
 public:
  void Add(std::unique_ptr<OptPass> pass) {
    passes_.push_back(std::move(pass));
  }

  size_t num_passes() const { return passes_.size(); }

  /// Runs every pass in order. Stops at (and returns) the first failure;
  /// `dumps` may be nullptr when capture is off.
  Status Run(MultiQueryIr* ir, bool dump_ir, std::vector<PassDump>* dumps);

 private:
  std::vector<std::unique_ptr<OptPass>> passes_;
};

/// The standard pipeline in dependency order: DSE (so later passes see only
/// live structure) -> CSE (interning feeds both remaining passes) -> prefix
/// merge -> predicate pushdown.
PassManager MakeDefaultPipeline(const OptOptions& options);

}  // namespace opt
}  // namespace cep

#endif  // CEPSHED_OPT_PASS_MANAGER_H_
