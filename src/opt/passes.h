#ifndef CEPSHED_OPT_PASSES_H_
#define CEPSHED_OPT_PASSES_H_

#include <memory>
#include <string>

#include "opt/pass.h"

namespace cep {
namespace opt {

/// Dead-state/dead-edge elimination: folds reference-free predicates (true
/// predicates disappear, a provably-false predicate kills its edge when no
/// possibly-erroring predicate precedes it), then removes states that are
/// unreachable from the start state or cannot reach an accepting state, and
/// renumbers. The start state always survives, even for statically
/// unsatisfiable queries.
std::unique_ptr<OptPass> MakeDsePass();

/// Cross-query predicate CSE: interns every event-only edge predicate into
/// the shared table (structural identity, variable-normalized) and annotates
/// edges with the table ids, so MultiEngine evaluates each unique predicate
/// once per event for all queries.
std::unique_ptr<OptPass> MakeCsePass();

/// Shared-prefix merging: queries whose automaton, window, return spec, and
/// engine configuration are structurally identical collapse into one group
/// serviced by the lowest-indexed member's engine; match fan-out back to the
/// member query ids happens in MultiEngine. Also measures the maximum
/// shared-prefix depth across distinct automata (reported, not yet fused).
std::unique_ptr<OptPass> MakePrefixMergePass();

/// Predicate pushdown into ingestion: computes, per event type, the guard
/// conjunctions under which any edge anywhere could react, so callers can
/// drop events no registered query can ever match before the ReorderBuffer.
/// Disabled (safe=false) whenever any query observes events beyond edge
/// firing (strict contiguity, deferred finals, shedding, degradation,
/// latency thresholds).
std::unique_ptr<OptPass> MakePushdownPass();

/// Canonical name-free fingerprint of a unit's full automaton + emission
/// contract (exposed for tests and the merge pass).
std::string UnitMergeCanon(const QueryUnit& unit);

}  // namespace opt
}  // namespace cep

#endif  // CEPSHED_OPT_PASSES_H_
