#ifndef CEPSHED_OPT_PASS_H_
#define CEPSHED_OPT_PASS_H_

#include <string_view>

#include "common/result.h"
#include "opt/ir.h"

namespace cep {
namespace opt {

/// Which passes to run (all on by default) and whether to capture per-pass
/// before/after IR dumps.
struct OptOptions {
  bool dse = true;       ///< dead-state / dead-edge elimination
  bool cse = true;       ///< cross-query predicate interning
  bool merge = true;     ///< shared-prefix (identical-automaton) merging
  bool pushdown = true;  ///< ingestion-side event-type prefilter
  bool dump_ir = false;  ///< record before/after dumps per pass
};

/// \brief One transform over the multi-query IR.
///
/// Passes must preserve per-query match semantics exactly: the optimized
/// MultiEngine's per-query artifacts are diffed byte-for-byte against the
/// unoptimized one (stress_engine --multiquery). Anything a pass cannot
/// prove safe it must leave alone.
class OptPass {
 public:
  virtual ~OptPass() = default;
  virtual std::string_view name() const = 0;
  virtual Status Run(MultiQueryIr* ir) = 0;
};

}  // namespace opt
}  // namespace cep

#endif  // CEPSHED_OPT_PASS_H_
