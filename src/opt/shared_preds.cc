#include "opt/shared_preds.h"

#include "opt/expr_canon.h"

namespace cep {
namespace opt {

const Status& SharedPredRow::ErrorFor(int32_t id) const {
  for (const auto& [pred_id, status] : errors) {
    if (pred_id == id) return status;
  }
  // An edge only consults ErrorFor after reading a kError verdict, and every
  // kError verdict parks its status above; reaching here is a table bug.
  static const Status kMissing =
      Status::Internal("shared-predicate error verdict without status");
  return kMissing;
}

int32_t SharedPredTable::Intern(const Expr* expr, EventTypeId type,
                                int normalize_var) {
  ++interned_;
  std::string canon = CanonicalExprString(*expr, normalize_var);
  const auto key = std::make_pair(type, std::move(canon));
  const auto it = by_canon_.find(key);
  if (it != by_canon_.end()) {
    ++deduped_;
    return it->second;
  }
  const int32_t id = static_cast<int32_t>(preds_.size());
  preds_.push_back(PredInfo{expr, type, key.second});
  by_canon_.emplace(key, id);
  by_type_[type].push_back(id);
  return id;
}

void SharedPredTable::FillRow(SharedPredRow* row, const Event& event) {
  row->event = &event;
  row->verdicts.assign(preds_.size(), kNotEvaluated);
  row->errors.clear();
  const auto it = by_type_.find(event.type());
  if (it == by_type_.end()) return;
  for (const int32_t id : it->second) {
    Result<bool> verdict = EvalEventOnly(*preds_[id].expr, event);
    ++evals_done_;
    if (verdict.ok()) {
      row->verdicts[id] = verdict.ValueOrDie() ? kTrue : kFalse;
    } else {
      row->verdicts[id] = kError;
      row->errors.emplace_back(id, verdict.status());
    }
  }
}

void SharedPredTable::BeginEvent(const Event& event) {
  rows_.resize(1);
  row_index_.clear();
  FillRow(&rows_[0], event);
  row_index_.emplace(&event, 0);
}

void SharedPredTable::BeginBatch(std::span<const EventPtr> events) {
  rows_.resize(events.size());
  row_index_.clear();
  row_index_.reserve(events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    FillRow(&rows_[i], *events[i]);
    row_index_.emplace(events[i].get(), i);
  }
}

const SharedPredRow* SharedPredTable::RowFor(const Event* event) const {
  const auto it = row_index_.find(event);
  return it == row_index_.end() ? nullptr : &rows_[it->second];
}

bool SharedPredTable::EvalForIngest(int32_t id, const Event& event) const {
  const Result<bool> verdict = EvalEventOnly(*preds_[id].expr, event);
  return verdict.ok() ? verdict.ValueOrDie() : true;
}

}  // namespace opt
}  // namespace cep
