#ifndef CEPSHED_OPT_IR_H_
#define CEPSHED_OPT_IR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "engine/options.h"
#include "nfa/nfa.h"
#include "opt/shared_preds.h"

namespace cep {
namespace opt {

/// \brief Per-event-type ingestion interest computed by the pushdown pass.
///
/// An event type is *droppable* when every edge anywhere that consumes it is
/// guarded by a fully-interned predicate conjunction; an event for which all
/// such guards evaluate false can never advance, spawn, or kill any run in
/// any registered query, so ingestion may discard it before the
/// ReorderBuffer. Kill edges keep their events: dropping one would let a run
/// survive (and later match) that the unoptimized engine kills.
class EventPrefilter {
 public:
  struct EdgeGuard {
    /// Conjunction of shared-predicate ids, in edge evaluation order.
    std::vector<int32_t> pred_ids;
  };
  struct TypeInterest {
    /// Some edge of this type has a non-interned (or empty) predicate list:
    /// its verdict cannot be decided from the event alone, so keep.
    bool unconditional = false;
    std::vector<EdgeGuard> guards;
  };

  /// Whether the prefilter may drop events at all. False unless every
  /// registered query is skip-till-* selection with no deferred finals, no
  /// shedder, no degradation ladder, and no latency threshold — features
  /// that observe every event even when no edge fires.
  bool safe = false;
  std::map<EventTypeId, TypeInterest> interest;

  bool enabled() const { return safe; }

  /// True when `event` cannot affect any registered query. `table` supplies
  /// predicate evaluation; errors conservatively keep the event.
  bool ShouldDrop(const Event& event, const SharedPredTable& table) const;

  /// Same decision from an already-evaluated verdict row (no re-evaluation;
  /// used by MultiEngine after Begin{Event,Batch}). Non-kTrue/kFalse
  /// verdicts conservatively keep the event.
  bool ShouldDrop(const Event& event, const SharedPredRow& row) const;
};

/// \brief One registered query flowing through the pass pipeline.
///
/// Passes rewrite `nfa` (building a new Nfa over the same shared
/// AnalyzedQuery) and record what they changed; MultiEngine rebuilds its
/// physical engines from the surviving group leaders afterwards.
struct QueryUnit {
  size_t query_index = 0;
  std::string name;
  NfaPtr nfa;

  // Engine-side facts the passes must respect (filled by MultiEngine).
  SelectionStrategy selection = SelectionStrategy::kSkipTillAnyMatch;
  bool has_shedder = false;
  bool has_degradation = false;
  bool has_latency_threshold = false;
  uint64_t config_fingerprint = 0;

  /// Cleared by MultiEngine for shedder-bearing queries (per-query shedder
  /// state cannot be shared) and when merging is disabled.
  bool mergeable = false;
  /// Index of the query whose engine services this one; == query_index
  /// unless the prefix-merge pass folded it into an identical leader.
  size_t leader = 0;

  // Per-unit pass accounting.
  uint64_t states_eliminated = 0;
  uint64_t edges_eliminated = 0;
  uint64_t preds_folded = 0;
};

/// Aggregate pass statistics, exported as cep_opt_* metrics.
struct OptStats {
  uint64_t states_eliminated = 0;
  uint64_t edges_eliminated = 0;
  uint64_t preds_folded = 0;
  uint64_t preds_interned = 0;
  uint64_t preds_deduped = 0;
  uint64_t queries_merged = 0;
  uint64_t merge_groups = 0;
  uint64_t max_shared_prefix_depth = 0;
  uint64_t prefilter_types = 0;
  uint64_t prefilter_droppable_types = 0;
  bool prefilter_safe = false;
};

/// \brief The whole-workload IR the pass pipeline operates on.
struct MultiQueryIr {
  std::vector<QueryUnit> units;
  SharedPredTable preds;
  EventPrefilter prefilter;
  OptStats stats;

  /// Deterministic text rendering (no addresses): per-pass before/after
  /// dumps and opt_tool goldens diff this byte-for-byte.
  std::string Dump() const;
};

}  // namespace opt
}  // namespace cep

#endif  // CEPSHED_OPT_IR_H_
