#ifndef CEPSHED_OPT_FINGERPRINT_H_
#define CEPSHED_OPT_FINGERPRINT_H_

#include <cstdint>

#include "engine/options.h"

namespace cep {
namespace opt {

/// \brief Deterministic fingerprint over every EngineOptions field.
///
/// Two queries may share one physical engine only when their whole engine
/// configuration agrees — not just the match-relevant parts, because merged
/// queries also share metrics, checkpoints, and parallel/quality behaviour.
/// The fingerprint also guards snapshot compatibility: the optimizer state
/// section embeds a digest of all per-unit fingerprints, so a snapshot taken
/// under one optimization layout refuses to restore into another.
uint64_t FingerprintEngineOptions(const EngineOptions& options);

}  // namespace opt
}  // namespace cep

#endif  // CEPSHED_OPT_FINGERPRINT_H_
