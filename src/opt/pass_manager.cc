#include "opt/pass_manager.h"

#include "opt/passes.h"

namespace cep {
namespace opt {

Status PassManager::Run(MultiQueryIr* ir, bool dump_ir,
                        std::vector<PassDump>* dumps) {
  for (const auto& pass : passes_) {
    PassDump dump;
    if (dump_ir && dumps != nullptr) {
      dump.pass = std::string(pass->name());
      dump.before = ir->Dump();
    }
    CEP_RETURN_NOT_OK(
        pass->Run(ir).WithContext("opt pass '" + std::string(pass->name()) +
                                  "'"));
    if (dump_ir && dumps != nullptr) {
      dump.after = ir->Dump();
      dumps->push_back(std::move(dump));
    }
  }
  return Status::OK();
}

PassManager MakeDefaultPipeline(const OptOptions& options) {
  PassManager pm;
  if (options.dse) pm.Add(MakeDsePass());
  if (options.cse) pm.Add(MakeCsePass());
  if (options.merge) pm.Add(MakePrefixMergePass());
  if (options.pushdown) pm.Add(MakePushdownPass());
  return pm;
}

}  // namespace opt
}  // namespace cep
