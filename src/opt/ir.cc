#include "opt/ir.h"

#include "common/string_util.h"

namespace cep {
namespace opt {

bool EventPrefilter::ShouldDrop(const Event& event,
                                const SharedPredTable& table) const {
  if (!safe) return false;
  const auto it = interest.find(event.type());
  // No registered query consumes this type at all.
  if (it == interest.end()) return true;
  const TypeInterest& ti = it->second;
  if (ti.unconditional) return false;
  for (const EdgeGuard& guard : ti.guards) {
    bool could_fire = true;
    for (const int32_t id : guard.pred_ids) {
      if (!table.EvalForIngest(id, event)) {
        could_fire = false;
        break;
      }
    }
    if (could_fire) return false;
  }
  return true;
}

bool EventPrefilter::ShouldDrop(const Event& event,
                                const SharedPredRow& row) const {
  if (!safe) return false;
  const auto it = interest.find(event.type());
  if (it == interest.end()) return true;
  const TypeInterest& ti = it->second;
  if (ti.unconditional) return false;
  for (const EdgeGuard& guard : ti.guards) {
    bool could_fire = true;
    for (const int32_t id : guard.pred_ids) {
      if (row.verdicts[id] == SharedPredTable::kFalse) {
        could_fire = false;
        break;
      }
      // kTrue keeps probing; kError / kNotEvaluated conservatively keep the
      // event so the engines surface the error (or evaluate) themselves.
      if (row.verdicts[id] != SharedPredTable::kTrue) break;
    }
    if (could_fire) return false;
  }
  return true;
}

std::string MultiQueryIr::Dump() const {
  std::string out;
  for (const QueryUnit& unit : units) {
    out += StrFormat("query[%zu] '%s' states=%zu window=%lld\n",
                     unit.query_index, unit.name.c_str(),
                     unit.nfa->num_states(),
                     static_cast<long long>(unit.nfa->window()));
    if (unit.leader != unit.query_index) {
      out += StrFormat("  merged-into query[%zu]\n", unit.leader);
      continue;
    }
    for (const State& state : unit.nfa->states()) {
      out += StrFormat("  s%d var=%d%s%s%s\n", state.id, state.var_index,
                       state.in_kleene ? " kleene" : "",
                       state.is_final ? " final" : "",
                       state.deferred_final ? " deferred" : "");
      for (size_t fp = 0; fp < state.final_predicates.size(); ++fp) {
        out += StrFormat("    final-pred %s\n",
                         state.final_predicates[fp]->ToString().c_str());
      }
      for (const Edge& edge : state.edges) {
        out += StrFormat("    %s type=%d var=%d", EdgeKindName(edge.kind),
                         static_cast<int>(edge.event_type), edge.var_index);
        if (edge.exit_var >= 0) out += StrFormat(" exit=%d", edge.exit_var);
        if (edge.target >= 0) out += StrFormat(" -> s%d", edge.target);
        for (size_t j = 0; j < edge.predicates.size(); ++j) {
          const int32_t shared = j < edge.shared_pred_ids.size()
                                     ? edge.shared_pred_ids[j]
                                     : -1;
          out += StrFormat(" [%s%s]", edge.predicates[j]->ToString().c_str(),
                           shared >= 0
                               ? StrFormat(" #%d", shared).c_str()
                               : "");
        }
        for (const Expr* exit_pred : edge.exit_predicates) {
          out += StrFormat(" [exit: %s]", exit_pred->ToString().c_str());
        }
        out += '\n';
      }
    }
  }
  out += StrFormat("shared-preds: %zu unique (%llu interned, %llu deduped)\n",
                   preds.size(),
                   static_cast<unsigned long long>(preds.interned()),
                   static_cast<unsigned long long>(preds.deduped()));
  for (size_t id = 0; id < preds.size(); ++id) {
    out += StrFormat("  #%zu type=%d %s\n", id,
                     static_cast<int>(preds.pred_type(
                         static_cast<int32_t>(id))),
                     preds.expr(static_cast<int32_t>(id))->ToString().c_str());
  }
  out += StrFormat("prefilter: safe=%s\n", prefilter.safe ? "yes" : "no");
  for (const auto& [type, ti] : prefilter.interest) {
    if (ti.unconditional) {
      out += StrFormat("  type=%d keep (unconditional edge)\n",
                       static_cast<int>(type));
      continue;
    }
    out += StrFormat("  type=%d droppable, %zu guard(s):",
                     static_cast<int>(type), ti.guards.size());
    for (const EventPrefilter::EdgeGuard& guard : ti.guards) {
      out += " (";
      for (size_t j = 0; j < guard.pred_ids.size(); ++j) {
        if (j > 0) out += " && ";
        out += StrFormat("#%d", guard.pred_ids[j]);
      }
      out += ')';
    }
    out += '\n';
  }
  out += StrFormat(
      "stats: states-eliminated=%llu edges-eliminated=%llu preds-folded=%llu "
      "queries-merged=%llu groups=%llu max-prefix-depth=%llu\n",
      static_cast<unsigned long long>(stats.states_eliminated),
      static_cast<unsigned long long>(stats.edges_eliminated),
      static_cast<unsigned long long>(stats.preds_folded),
      static_cast<unsigned long long>(stats.queries_merged),
      static_cast<unsigned long long>(stats.merge_groups),
      static_cast<unsigned long long>(stats.max_shared_prefix_depth));
  return out;
}

}  // namespace opt
}  // namespace cep
