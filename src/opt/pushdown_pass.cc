#include "opt/passes.h"

namespace cep {
namespace opt {

namespace {

class PushdownPass final : public OptPass {
 public:
  std::string_view name() const override { return "pushdown"; }

  Status Run(MultiQueryIr* ir) override {
    EventPrefilter& pf = ir->prefilter;
    // Safety gate: dropping an event before ingestion is only transparent
    // when no query observes events beyond edge firing. Strict contiguity
    // kills runs on any non-advancing event; deferred finals emit on window
    // expiry (whose order the ReorderBuffer ties to arrivals); shedders,
    // degradation ladders and latency thresholds feed on per-event cost.
    bool safe = !ir->units.empty();
    for (const QueryUnit& unit : ir->units) {
      if (unit.selection == SelectionStrategy::kStrictContiguity ||
          unit.has_shedder || unit.has_degradation ||
          unit.has_latency_threshold) {
        safe = false;
      }
      for (const State& state : unit.nfa->states()) {
        if (state.deferred_final) safe = false;
      }
    }

    for (const QueryUnit& unit : ir->units) {
      if (unit.leader != unit.query_index) continue;  // leader automaton only
      for (const State& state : unit.nfa->states()) {
        for (const Edge& edge : state.edges) {
          EventPrefilter::TypeInterest& ti = pf.interest[edge.event_type];
          // An event that only matches kill edges must be kept: dropping it
          // would let a doomed run survive and later emit a false match.
          if (edge.kind == EdgeKind::kKill || edge.predicates.empty()) {
            ti.unconditional = true;
            continue;
          }
          EventPrefilter::EdgeGuard guard;
          bool fully_interned =
              edge.shared_pred_ids.size() == edge.predicates.size();
          if (fully_interned) {
            for (const int32_t id : edge.shared_pred_ids) {
              if (id < 0) {
                fully_interned = false;
                break;
              }
              guard.pred_ids.push_back(id);
            }
          }
          if (!fully_interned) {
            // Some predicate needs run context; the event might always fire.
            ti.unconditional = true;
            continue;
          }
          ti.guards.push_back(std::move(guard));
        }
      }
    }
    pf.safe = safe;
    ir->stats.prefilter_safe = safe;
    ir->stats.prefilter_types = pf.interest.size();
    for (const auto& [type, ti] : pf.interest) {
      (void)type;
      if (!ti.unconditional) ++ir->stats.prefilter_droppable_types;
    }
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<OptPass> MakePushdownPass() {
  return std::make_unique<PushdownPass>();
}

}  // namespace opt
}  // namespace cep
