#ifndef CEPSHED_OPT_EXPR_CANON_H_
#define CEPSHED_OPT_EXPR_CANON_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "event/event.h"
#include "query/expr.h"

namespace cep {
namespace opt {

/// \brief Name-free structural canonicalization of resolved expressions.
///
/// Two predicates from *different* queries must compare equal when they do
/// the same work, even though their variables carry different names — so the
/// canonical form encodes resolved indices and operator tags, never symbolic
/// names. `normalize_var` >= 0 additionally rewrites references to that
/// variable as the anonymous candidate "@": an event-only predicate's
/// identity must not depend on where its variable sits in the pattern.
void CanonicalizeExpr(const Expr& expr, int normalize_var, std::string* out);

/// Canonical form as a fresh string (convenience for hashing/interning).
std::string CanonicalExprString(const Expr& expr, int normalize_var = -1);

/// \brief True iff evaluating `expr` on a take edge of variable `var` reads
/// nothing but the candidate event: every attribute reference is kSingle or
/// kCurrent on `var` itself (both resolve to the candidate under the
/// virtual-append contract), and there are no COUNT/aggregate nodes or
/// references to other variables. Such predicates are a pure function of the
/// event and are eligible for cross-query interning (CSE) and ingestion
/// pushdown.
bool IsEventOnly(const Expr& expr, int var);

/// True iff `expr` contains no references at all (literals/arithmetic only).
bool IsConstant(const Expr& expr);

/// Evaluates an event-only predicate against `event` alone. The verdict (and
/// any error) is byte-identical to what edge evaluation would produce for
/// the same predicate and candidate.
Result<bool> EvalEventOnly(const Expr& expr, const Event& event);

/// Evaluates a constant predicate (IsConstant). Errors (e.g. division by
/// zero) are returned, not folded: the caller must leave such predicates in
/// place so runtime behaviour is preserved.
Result<bool> EvalConstant(const Expr& expr);

}  // namespace opt
}  // namespace cep

#endif  // CEPSHED_OPT_EXPR_CANON_H_
