#ifndef CEPSHED_EVENT_EVENT_H_
#define CEPSHED_EVENT_EVENT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/time.h"
#include "common/value.h"
#include "event/schema.h"

namespace cep {

/// \brief An immutable, timestamped occurrence with a typed payload.
///
/// Events are shared between partial matches via shared_ptr, so the engine's
/// exponential partial-match state stores event *references*, not copies.
/// Within a stream, `sequence` is a dense arrival index that breaks timestamp
/// ties and gives every event a stable identity for accuracy accounting.
class Event {
 public:
  Event(EventTypeId type, SchemaPtr schema, Timestamp timestamp,
        std::vector<Value> attributes, uint64_t sequence = 0);

  EventTypeId type() const { return type_; }
  const EventSchema& schema() const { return *schema_; }
  /// Shared schema handle (for constructing derived events, e.g. the
  /// fault-injection corruptor).
  const SchemaPtr& shared_schema() const { return schema_; }
  Timestamp timestamp() const { return timestamp_; }
  uint64_t sequence() const { return sequence_; }

  size_t num_attributes() const { return attributes_.size(); }
  /// Attribute by schema index; index must be valid.
  const Value& attribute(int index) const { return attributes_[index]; }
  /// Attribute by name; returns a null Value when absent.
  const Value& attribute(std::string_view name) const;

  /// "type@ts{a=1, b=x}"
  std::string ToString() const;

 private:
  EventTypeId type_;
  SchemaPtr schema_;
  Timestamp timestamp_;
  uint64_t sequence_;
  std::vector<Value> attributes_;
};

using EventPtr = std::shared_ptr<const Event>;

/// \brief Fluent helper for constructing events against a schema.
///
/// Unset attributes default to null. Setting an unknown attribute or a value
/// of the wrong type is reported when Build() is called.
class EventBuilder {
 public:
  EventBuilder(EventTypeId type, SchemaPtr schema, Timestamp timestamp);

  EventBuilder& Set(std::string_view name, Value value);
  EventBuilder& SetSequence(uint64_t sequence);

  /// Validates and produces the event.
  Result<EventPtr> Build();

 private:
  EventTypeId type_;
  SchemaPtr schema_;
  Timestamp timestamp_;
  uint64_t sequence_ = 0;
  std::vector<Value> attributes_;
  Status error_;
};

}  // namespace cep

#endif  // CEPSHED_EVENT_EVENT_H_
