#ifndef CEPSHED_EVENT_FAULT_INJECTION_H_
#define CEPSHED_EVENT_FAULT_INJECTION_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "event/stream.h"

namespace cep {

/// \brief Per-fault probabilities and scheduling for FaultInjectingStream.
///
/// All faults are driven by one seeded RNG, so the same (options, inner
/// stream) pair replays the identical fault schedule — tests and benches can
/// compare strategies under bit-identical storms.
struct FaultInjectionOptions {
  /// Event is silently discarded.
  double drop_probability = 0.0;
  /// Event is delivered, then delivered again (same sequence number — the
  /// duplicate is indistinguishable from an at-least-once redelivery).
  double duplicate_probability = 0.0;
  /// Event is held back and re-emitted after `delay_events` later
  /// deliveries, i.e. out of timestamp order (feed a ReorderBuffer, or let
  /// the engine's error budget quarantine the regression).
  double delay_probability = 0.0;
  size_t delay_events = 8;
  /// One attribute is corrupted: nulled with `corrupt_null_fraction`,
  /// otherwise type-flipped (int -> string, string -> int, ...).
  double corrupt_probability = 0.0;
  double corrupt_null_fraction = 0.5;

  /// Faults are injected only for events whose timestamp falls in
  /// [active_from, active_until); defaults cover the whole stream. Use a
  /// sub-range to model a bounded storm.
  Timestamp active_from = INT64_MIN;
  Timestamp active_until = kMaxTimestamp;

  uint64_t seed = 0xfa517;
};

/// Counters of injected faults (and clean deliveries).
struct FaultInjectionStats {
  uint64_t delivered = 0;   ///< events emitted downstream (incl. duplicates)
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t delayed = 0;
  uint64_t corrupted = 0;

  std::string ToString() const;
};

/// \brief Deterministic fault-injecting wrapper around an EventStream.
///
/// Reproduces the failure modes a production ingestion path sees — loss,
/// at-least-once redelivery, reordering, and payload corruption — with
/// per-fault probabilities, a bounded activity window, and a fixed seed.
/// Exactly one fault is applied per event (drop wins over delay wins over
/// duplicate; corruption composes with duplication so a redelivered event
/// can also be poisoned).
class FaultInjectingStream final : public EventStream {
 public:
  FaultInjectingStream(std::unique_ptr<EventStream> inner,
                       FaultInjectionOptions options);

  EventPtr Next() override;

  const FaultInjectionStats& stats() const { return stats_; }

 private:
  /// Copy of `event` with one attribute nulled or type-flipped.
  EventPtr Corrupt(const EventPtr& event);

  /// Pops a delayed event due for release, if any.
  EventPtr TakeDueDelayed();

  std::unique_ptr<EventStream> inner_;
  FaultInjectionOptions options_;
  Rng rng_;
  FaultInjectionStats stats_;
  std::deque<EventPtr> pending_duplicates_;
  /// (release after this many deliveries, event)
  std::vector<std::pair<uint64_t, EventPtr>> delayed_;
};

}  // namespace cep

#endif  // CEPSHED_EVENT_FAULT_INJECTION_H_
