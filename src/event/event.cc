#include "event/event.h"

#include <utility>

namespace cep {

namespace {
const Value& NullValue() {
  static const Value* const kNull = new Value();
  return *kNull;
}

bool TypeMatches(ValueType declared, const Value& v) {
  if (v.is_null()) return true;  // null is allowed for any declared type
  if (declared == ValueType::kDouble && v.is_int()) return true;  // widening
  return v.type() == declared;
}
}  // namespace

Event::Event(EventTypeId type, SchemaPtr schema, Timestamp timestamp,
             std::vector<Value> attributes, uint64_t sequence)
    : type_(type),
      schema_(std::move(schema)),
      timestamp_(timestamp),
      sequence_(sequence),
      attributes_(std::move(attributes)) {}

const Value& Event::attribute(std::string_view name) const {
  const int idx = schema_->FindAttribute(name);
  if (idx < 0) return NullValue();
  return attributes_[idx];
}

std::string Event::ToString() const {
  std::string out = schema_->name();
  out += "@";
  out += std::to_string(timestamp_);
  out += "{";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema_->attribute(static_cast<int>(i)).name;
    out += "=";
    out += attributes_[i].ToString();
  }
  out += "}";
  return out;
}

EventBuilder::EventBuilder(EventTypeId type, SchemaPtr schema,
                           Timestamp timestamp)
    : type_(type), schema_(std::move(schema)), timestamp_(timestamp) {
  attributes_.resize(schema_->num_attributes());
}

EventBuilder& EventBuilder::Set(std::string_view name, Value value) {
  if (!error_.ok()) return *this;
  const int idx = schema_->FindAttribute(name);
  if (idx < 0) {
    error_ = Status::NotFound("event type '" + schema_->name() +
                              "' has no attribute '" + std::string(name) + "'");
    return *this;
  }
  const ValueType declared = schema_->attribute(idx).type;
  if (!TypeMatches(declared, value)) {
    error_ = Status::TypeError(
        "attribute '" + std::string(name) + "' of '" + schema_->name() +
        "' expects " + ValueTypeName(declared) + ", got " +
        ValueTypeName(value.type()));
    return *this;
  }
  // Normalise int literals assigned to double attributes.
  if (declared == ValueType::kDouble && value.is_int()) {
    value = Value(value.AsDouble());
  }
  attributes_[idx] = std::move(value);
  return *this;
}

EventBuilder& EventBuilder::SetSequence(uint64_t sequence) {
  sequence_ = sequence;
  return *this;
}

Result<EventPtr> EventBuilder::Build() {
  CEP_RETURN_NOT_OK(error_);
  return std::make_shared<Event>(type_, schema_, timestamp_,
                                 std::move(attributes_), sequence_);
}

}  // namespace cep
