#include "event/fault_injection.h"

#include <algorithm>

#include "common/string_util.h"

namespace cep {

std::string FaultInjectionStats::ToString() const {
  return StrFormat(
      "delivered=%llu dropped=%llu duplicated=%llu delayed=%llu "
      "corrupted=%llu",
      static_cast<unsigned long long>(delivered),
      static_cast<unsigned long long>(dropped),
      static_cast<unsigned long long>(duplicated),
      static_cast<unsigned long long>(delayed),
      static_cast<unsigned long long>(corrupted));
}

FaultInjectingStream::FaultInjectingStream(std::unique_ptr<EventStream> inner,
                                           FaultInjectionOptions options)
    : inner_(std::move(inner)), options_(options), rng_(options.seed) {}

EventPtr FaultInjectingStream::TakeDueDelayed() {
  for (auto it = delayed_.begin(); it != delayed_.end(); ++it) {
    if (it->first <= stats_.delivered) {
      EventPtr event = std::move(it->second);
      delayed_.erase(it);
      return event;
    }
  }
  return nullptr;
}

EventPtr FaultInjectingStream::Corrupt(const EventPtr& event) {
  std::vector<Value> values;
  values.reserve(event->num_attributes());
  for (size_t i = 0; i < event->num_attributes(); ++i) {
    values.push_back(event->attribute(static_cast<int>(i)));
  }
  if (!values.empty()) {
    const size_t victim = rng_.NextBounded(values.size());
    if (rng_.NextBernoulli(options_.corrupt_null_fraction)) {
      values[victim] = Value::Null();
    } else {
      // Type flip: keep the payload recognisably wrong rather than garbage
      // bytes, the way an upstream serialisation bug manifests.
      const Value& old = values[victim];
      switch (old.type()) {
        case ValueType::kInt:
          values[victim] = Value(std::to_string(old.int_value()) + "?");
          break;
        case ValueType::kDouble:
          values[victim] = Value(std::to_string(old.double_value()) + "?");
          break;
        case ValueType::kString:
          values[victim] = Value(static_cast<int64_t>(-1));
          break;
        case ValueType::kBool:
          values[victim] = Value(static_cast<int64_t>(old.bool_value()));
          break;
        case ValueType::kNull:
          values[victim] = Value("corrupt");
          break;
      }
    }
  }
  return std::make_shared<Event>(event->type(), event->shared_schema(),
                                 event->timestamp(), std::move(values),
                                 event->sequence());
}

EventPtr FaultInjectingStream::Next() {
  while (true) {
    // Delayed events re-enter first once their release point passes.
    if (EventPtr due = TakeDueDelayed()) {
      ++stats_.delivered;
      return due;
    }
    if (!pending_duplicates_.empty()) {
      EventPtr dup = std::move(pending_duplicates_.front());
      pending_duplicates_.pop_front();
      ++stats_.delivered;
      return dup;
    }
    EventPtr event = inner_->Next();
    if (event == nullptr) {
      // End of inner stream: flush whatever is still held back.
      if (!delayed_.empty()) {
        EventPtr held = std::move(delayed_.front().second);
        delayed_.erase(delayed_.begin());
        ++stats_.delivered;
        return held;
      }
      return nullptr;
    }
    const Timestamp ts = event->timestamp();
    const bool active =
        ts >= options_.active_from && ts < options_.active_until;
    if (!active) {
      ++stats_.delivered;
      return event;
    }
    if (rng_.NextBernoulli(options_.drop_probability)) {
      ++stats_.dropped;
      continue;
    }
    if (rng_.NextBernoulli(options_.delay_probability)) {
      ++stats_.delayed;
      delayed_.emplace_back(
          stats_.delivered + std::max<size_t>(options_.delay_events, 1),
          std::move(event));
      continue;
    }
    if (rng_.NextBernoulli(options_.duplicate_probability)) {
      ++stats_.duplicated;
      pending_duplicates_.push_back(event);
    }
    if (rng_.NextBernoulli(options_.corrupt_probability)) {
      ++stats_.corrupted;
      event = Corrupt(event);
    }
    ++stats_.delivered;
    return event;
  }
}

}  // namespace cep
