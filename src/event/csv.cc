#include "event/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace cep {

namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

std::string ValueToField(const Value& v) {
  if (v.is_null()) return "";
  if (v.is_string()) return QuoteField(v.string_value());
  return v.ToString();
}

// A record is complete when it ends outside any quoted section; quoted
// fields may span lines, in which case getline splits them and the reader
// must stitch consecutive lines back together.
bool CsvRecordComplete(std::string_view record) {
  bool in_quotes = false;
  for (const char c : record) {
    if (c == '"') in_quotes = !in_quotes;
  }
  return !in_quotes;
}

Result<Value> FieldToValue(const std::string& field, ValueType type) {
  if (field.empty()) return Value::Null();
  switch (type) {
    case ValueType::kBool:
      if (field == "true") return Value(true);
      if (field == "false") return Value(false);
      return Status::ParseError("invalid bool field: '" + field + "'");
    case ValueType::kInt: {
      CEP_ASSIGN_OR_RETURN(int64_t v, ParseInt64(field));
      return Value(v);
    }
    case ValueType::kDouble: {
      CEP_ASSIGN_OR_RETURN(double v, ParseDouble(field));
      return Value(v);
    }
    case ValueType::kString:
      return Value(field);
    case ValueType::kNull:
      return Status::TypeError("schema declares null-typed attribute");
  }
  return Status::Internal("unreachable");
}

}  // namespace

Result<std::vector<std::string>> SplitCsvRecord(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current += c;
      ++i;
    } else {
      if (c == '"') {
        if (!current.empty()) {
          return Status::ParseError("quote inside unquoted field");
        }
        in_quotes = true;
        ++i;
      } else if (c == ',') {
        fields.push_back(std::move(current));
        current.clear();
        ++i;
      } else {
        current += c;
        ++i;
      }
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

std::string EventToCsvLine(const Event& event) {
  std::string out = QuoteField(event.schema().name());
  out += ",";
  out += std::to_string(event.timestamp());
  for (size_t i = 0; i < event.num_attributes(); ++i) {
    out += ",";
    out += ValueToField(event.attribute(static_cast<int>(i)));
  }
  return out;
}

Status WriteEventsCsv(std::ostream& out, const std::vector<EventPtr>& events) {
  for (const auto& e : events) {
    out << EventToCsvLine(*e) << "\n";
  }
  if (!out) return Status::IoError("failed writing CSV stream");
  return Status::OK();
}

Status WriteEventsCsvFile(const std::string& path,
                          const std::vector<EventPtr>& events) {
  std::ofstream f(path);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  return WriteEventsCsv(f, events);
}

Result<EventPtr> EventFromCsvLine(const SchemaRegistry& registry,
                                  std::string_view line, uint64_t sequence) {
  CEP_ASSIGN_OR_RETURN(std::vector<std::string> fields, SplitCsvRecord(line));
  if (fields.size() < 2) {
    return Status::ParseError("CSV record needs at least type,timestamp");
  }
  CEP_ASSIGN_OR_RETURN(EventTypeId type, registry.GetType(fields[0]));
  const SchemaPtr& schema = registry.schema(type);
  CEP_ASSIGN_OR_RETURN(int64_t ts, ParseInt64(fields[1]));
  if (fields.size() != 2 + schema->num_attributes()) {
    return Status::ParseError(StrFormat(
        "CSV record for '%s' has %zu value fields, schema expects %zu",
        fields[0].c_str(), fields.size() - 2, schema->num_attributes()));
  }
  std::vector<Value> values(schema->num_attributes());
  for (size_t i = 0; i < values.size(); ++i) {
    CEP_ASSIGN_OR_RETURN(
        values[i],
        FieldToValue(fields[2 + i],
                     schema->attribute(static_cast<int>(i)).type));
  }
  return std::make_shared<Event>(type, schema, ts, std::move(values), sequence);
}

Result<std::vector<EventPtr>> ReadEventsCsv(const SchemaRegistry& registry,
                                            std::istream& in) {
  return ReadEventsCsv(registry, in, CsvReadOptions{}, nullptr);
}

Result<std::vector<EventPtr>> ReadEventsCsv(const SchemaRegistry& registry,
                                            std::istream& in,
                                            const CsvReadOptions& options,
                                            CsvReadStats* stats) {
  std::vector<EventPtr> out;
  std::string line;
  uint64_t seq = 0;
  size_t line_no = 0;
  size_t consecutive_errors = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (StripWhitespace(line).empty()) continue;
    // Quoted fields may contain raw newlines: keep appending physical lines
    // until the quotes balance (or input ends, leaving the record malformed).
    std::string continuation;
    while (!CsvRecordComplete(line) && std::getline(in, continuation)) {
      ++line_no;
      if (!continuation.empty() && continuation.back() == '\r') {
        continuation.pop_back();
      }
      line += '\n';
      line += continuation;
    }
    if (stats != nullptr) ++stats->lines_read;
    auto result = EventFromCsvLine(registry, line, seq);
    if (!result.ok()) {
      const Status contextual =
          result.status().WithContext(StrFormat("line %zu", line_no));
      if (options.max_consecutive_errors == 0) return contextual;
      ++consecutive_errors;
      if (stats != nullptr) {
        ++stats->quarantined;
        stats->last_error = contextual.ToString();
      }
      if (consecutive_errors >= options.max_consecutive_errors) {
        return contextual.WithContext(
            StrFormat("CSV error budget exhausted (%zu consecutive bad "
                      "records)",
                      consecutive_errors));
      }
      continue;
    }
    consecutive_errors = 0;
    ++seq;
    out.push_back(result.MoveValueUnsafe());
  }
  return out;
}

Result<std::vector<EventPtr>> ReadEventsCsvFile(const SchemaRegistry& registry,
                                                const std::string& path) {
  return ReadEventsCsvFile(registry, path, CsvReadOptions{}, nullptr);
}

Result<std::vector<EventPtr>> ReadEventsCsvFile(const SchemaRegistry& registry,
                                                const std::string& path,
                                                const CsvReadOptions& options,
                                                CsvReadStats* stats) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open for reading: " + path);
  return ReadEventsCsv(registry, f, options, stats);
}

}  // namespace cep
