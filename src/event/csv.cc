#include "event/csv.h"

#include <fstream>
#include <limits>
#include <sstream>

#include "common/string_util.h"

namespace cep {

namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

std::string ValueToField(const Value& v) {
  if (v.is_null()) return "";
  if (v.is_string()) return QuoteField(v.string_value());
  return v.ToString();
}

// A record is complete when it ends outside any quoted section; quoted
// fields may span lines, in which case getline splits them and the reader
// must stitch consecutive lines back together.
bool CsvRecordComplete(std::string_view record) {
  bool in_quotes = false;
  for (const char c : record) {
    if (c == '"') in_quotes = !in_quotes;
  }
  return !in_quotes;
}

Result<Value> FieldToValue(const std::string& field, ValueType type) {
  if (field.empty()) return Value::Null();
  switch (type) {
    case ValueType::kBool:
      if (field == "true") return Value(true);
      if (field == "false") return Value(false);
      return Status::ParseError("invalid bool field: '" + field + "'");
    case ValueType::kInt: {
      CEP_ASSIGN_OR_RETURN(int64_t v, ParseInt64(field));
      return Value(v);
    }
    case ValueType::kDouble: {
      CEP_ASSIGN_OR_RETURN(double v, ParseDouble(field));
      return Value(v);
    }
    case ValueType::kString:
      return Value(field);
    case ValueType::kNull:
      return Status::TypeError("schema declares null-typed attribute");
  }
  return Status::Internal("unreachable");
}

/// Bounded getline: reads one physical line (up to '\n', delimiter
/// consumed but not stored) into `*line`, never holding more than
/// `max_bytes` of it in memory (0 = unbounded). When the bound is hit the
/// rest of the physical line is discarded unread and `*truncated` is set.
/// Returns false when the stream is exhausted before any input was read.
bool GetlineBounded(std::istream& in, std::string* line, size_t max_bytes,
                    bool* truncated) {
  line->clear();
  *truncated = false;
  char buf[4096];
  bool read_any = false;
  while (true) {
    in.getline(buf, sizeof(buf));
    const auto count = static_cast<size_t>(in.gcount());
    if (count == 0 && !read_any) return false;  // end of stream
    if (count > 0) read_any = true;
    // getline stops for one of three reasons: the delimiter was extracted
    // (gcount counts it, stream still good), the buffer filled (failbit,
    // gcount == capacity-1), or EOF cut the final unterminated line
    // (eofbit only, gcount == stored chars).
    const bool buffer_full =
        in.fail() && !in.eof() && count == sizeof(buf) - 1;
    const size_t stored =
        (buffer_full || in.eof()) ? count : (count > 0 ? count - 1 : 0);
    if (max_bytes > 0 && line->size() + stored > max_bytes) {
      *truncated = true;
      line->append(buf, max_bytes - line->size());
      if (buffer_full) {
        in.clear();
        in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
      }
      return true;
    }
    line->append(buf, stored);
    if (!buffer_full) return true;
    in.clear();
  }
}

}  // namespace

Result<std::vector<std::string>> SplitCsvRecord(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current += c;
      ++i;
    } else {
      if (c == '"') {
        if (!current.empty()) {
          return Status::ParseError("quote inside unquoted field");
        }
        in_quotes = true;
        ++i;
      } else if (c == ',') {
        fields.push_back(std::move(current));
        current.clear();
        ++i;
      } else {
        current += c;
        ++i;
      }
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

std::string EventToCsvLine(const Event& event) {
  std::string out = QuoteField(event.schema().name());
  out += ",";
  out += std::to_string(event.timestamp());
  for (size_t i = 0; i < event.num_attributes(); ++i) {
    out += ",";
    out += ValueToField(event.attribute(static_cast<int>(i)));
  }
  return out;
}

Status WriteEventsCsv(std::ostream& out, const std::vector<EventPtr>& events) {
  for (const auto& e : events) {
    out << EventToCsvLine(*e) << "\n";
  }
  if (!out) return Status::IoError("failed writing CSV stream");
  return Status::OK();
}

Status WriteEventsCsvFile(const std::string& path,
                          const std::vector<EventPtr>& events) {
  std::ofstream f(path);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  return WriteEventsCsv(f, events);
}

Result<EventPtr> EventFromCsvLine(const SchemaRegistry& registry,
                                  std::string_view line, uint64_t sequence) {
  CEP_ASSIGN_OR_RETURN(std::vector<std::string> fields, SplitCsvRecord(line));
  if (fields.size() < 2) {
    return Status::ParseError("CSV record needs at least type,timestamp");
  }
  CEP_ASSIGN_OR_RETURN(EventTypeId type, registry.GetType(fields[0]));
  const SchemaPtr& schema = registry.schema(type);
  CEP_ASSIGN_OR_RETURN(int64_t ts, ParseInt64(fields[1]));
  if (fields.size() != 2 + schema->num_attributes()) {
    return Status::ParseError(StrFormat(
        "CSV record for '%s' has %zu value fields, schema expects %zu",
        fields[0].c_str(), fields.size() - 2, schema->num_attributes()));
  }
  std::vector<Value> values(schema->num_attributes());
  for (size_t i = 0; i < values.size(); ++i) {
    CEP_ASSIGN_OR_RETURN(
        values[i],
        FieldToValue(fields[2 + i],
                     schema->attribute(static_cast<int>(i)).type));
  }
  return std::make_shared<Event>(type, schema, ts, std::move(values), sequence);
}

Result<std::vector<EventPtr>> ReadEventsCsv(const SchemaRegistry& registry,
                                            std::istream& in) {
  return ReadEventsCsv(registry, in, CsvReadOptions{}, nullptr);
}

Result<std::vector<EventPtr>> ReadEventsCsv(const SchemaRegistry& registry,
                                            std::istream& in,
                                            const CsvReadOptions& options,
                                            CsvReadStats* stats) {
  std::vector<EventPtr> out;
  std::string line;
  uint64_t seq = 0;
  size_t line_no = 0;
  size_t consecutive_errors = 0;
  const size_t max_bytes = options.max_record_bytes;
  bool truncated = false;
  // Shared quarantine path for malformed and oversized records: strict mode
  // (max_consecutive_errors == 0) fails the read, otherwise the record is
  // skipped and only a long run of consecutive bad records aborts.
  const auto quarantine = [&](const Status& contextual,
                              bool oversized) -> Status {
    if (stats != nullptr) {
      ++stats->quarantined;
      if (oversized) ++stats->oversized;
      stats->last_error = contextual.ToString();
    }
    if (options.max_consecutive_errors == 0) return contextual;
    ++consecutive_errors;
    if (consecutive_errors >= options.max_consecutive_errors) {
      return contextual.WithContext(
          StrFormat("CSV error budget exhausted (%zu consecutive bad "
                    "records)",
                    consecutive_errors));
    }
    return Status::OK();
  };
  while (GetlineBounded(in, &line, max_bytes, &truncated)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!truncated && StripWhitespace(line).empty()) continue;
    // Quoted fields may contain raw newlines: keep appending physical lines
    // until the quotes balance (or input ends, leaving the record malformed).
    // The record bound covers the stitched whole, so an unterminated quote
    // can no longer buffer the rest of the file.
    std::string continuation;
    bool cont_truncated = false;
    while (!truncated && !CsvRecordComplete(line) &&
           GetlineBounded(in, &continuation, max_bytes, &cont_truncated)) {
      ++line_no;
      if (!continuation.empty() && continuation.back() == '\r') {
        continuation.pop_back();
      }
      line += '\n';
      line += continuation;
      if (cont_truncated || (max_bytes > 0 && line.size() > max_bytes)) {
        truncated = true;
      }
    }
    if (stats != nullptr) ++stats->lines_read;
    if (truncated) {
      // Distinct reason code: oversized records are an OutOfRange
      // quarantine, not a ParseError — callers can tell a hostile record
      // size from ordinary corruption.
      const Status contextual =
          Status::OutOfRange(
              StrFormat("record exceeds max_record_bytes=%zu", max_bytes))
              .WithContext(StrFormat("line %zu", line_no));
      CEP_RETURN_NOT_OK(quarantine(contextual, /*oversized=*/true));
      continue;
    }
    auto result = EventFromCsvLine(registry, line, seq);
    if (!result.ok()) {
      const Status contextual =
          result.status().WithContext(StrFormat("line %zu", line_no));
      CEP_RETURN_NOT_OK(quarantine(contextual, /*oversized=*/false));
      continue;
    }
    consecutive_errors = 0;
    ++seq;
    out.push_back(result.MoveValueUnsafe());
  }
  return out;
}

Result<std::vector<EventPtr>> ReadEventsCsvFile(const SchemaRegistry& registry,
                                                const std::string& path) {
  return ReadEventsCsvFile(registry, path, CsvReadOptions{}, nullptr);
}

Result<std::vector<EventPtr>> ReadEventsCsvFile(const SchemaRegistry& registry,
                                                const std::string& path,
                                                const CsvReadOptions& options,
                                                CsvReadStats* stats) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open for reading: " + path);
  return ReadEventsCsv(registry, f, options, stats);
}

}  // namespace cep
