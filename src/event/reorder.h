#ifndef CEPSHED_EVENT_REORDER_H_
#define CEPSHED_EVENT_REORDER_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "event/event.h"

namespace cep {

/// \brief Bounded-delay reordering buffer in front of the engine.
///
/// The engine requires non-decreasing timestamps, but real sources deliver
/// events out of order. The buffer holds events until the watermark —
/// highest timestamp seen minus `max_delay` — passes them, then releases
/// them in (timestamp, sequence, arrival) order. Events arriving behind the
/// watermark are *late*: they cannot be ordered anymore and are dropped and
/// counted (the stream-processing convention for bounded-delay ingestion).
///
/// The arrival index is stamped by the buffer itself: events whose producer
/// left the sequence unset (EventBuilder defaults to 0) or duplicated it
/// (fault-injection dup faults) would otherwise release in arbitrary heap
/// order on timestamp ties, making buffered ingestion of an already-ordered
/// stream differ from unbuffered ingestion.
class ReorderBuffer {
 public:
  explicit ReorderBuffer(Duration max_delay) : max_delay_(max_delay) {}

  /// Offers one event. Returns the events released by the advancing
  /// watermark, oldest first (often empty).
  std::vector<EventPtr> Push(EventPtr event);

  /// Releases everything still buffered (end of stream).
  std::vector<EventPtr> Flush();

  /// Current watermark: events at or before this timestamp have been
  /// released or dropped.
  Timestamp watermark() const {
    return max_seen_ == INT64_MIN ? INT64_MIN : max_seen_ - max_delay_;
  }

  uint64_t late_dropped() const { return late_dropped_; }
  size_t buffered() const { return heap_.size(); }

 private:
  struct Entry {
    EventPtr event;
    uint64_t arrival;  ///< dense per-buffer arrival index, breaks final ties
  };

  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.event->timestamp() != b.event->timestamp()) {
        return a.event->timestamp() > b.event->timestamp();
      }
      if (a.event->sequence() != b.event->sequence()) {
        return a.event->sequence() > b.event->sequence();
      }
      return a.arrival > b.arrival;
    }
  };

  Duration max_delay_;
  Timestamp max_seen_ = INT64_MIN;
  uint64_t next_arrival_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  uint64_t late_dropped_ = 0;
};

}  // namespace cep

#endif  // CEPSHED_EVENT_REORDER_H_
