#include "event/reorder.h"

namespace cep {

std::vector<EventPtr> ReorderBuffer::Push(EventPtr event) {
  std::vector<EventPtr> released;
  if (max_seen_ != INT64_MIN && event->timestamp() < watermark()) {
    ++late_dropped_;
    return released;
  }
  if (event->timestamp() > max_seen_) max_seen_ = event->timestamp();
  heap_.push(Entry{std::move(event), next_arrival_++});
  const Timestamp mark = watermark();
  while (!heap_.empty() && heap_.top().event->timestamp() <= mark) {
    released.push_back(heap_.top().event);
    heap_.pop();
  }
  return released;
}

std::vector<EventPtr> ReorderBuffer::Flush() {
  std::vector<EventPtr> released;
  released.reserve(heap_.size());
  while (!heap_.empty()) {
    released.push_back(heap_.top().event);
    heap_.pop();
  }
  return released;
}

}  // namespace cep
