#include "event/schema.h"

#include <utility>

namespace cep {

EventSchema::EventSchema(std::string name, std::vector<AttributeDef> attributes)
    : name_(std::move(name)), attributes_(std::move(attributes)) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    index_.emplace(attributes_[i].name, static_cast<int>(i));
  }
}

int EventSchema::FindAttribute(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  return it == index_.end() ? -1 : it->second;
}

Result<int> EventSchema::GetAttributeIndex(std::string_view name) const {
  const int idx = FindAttribute(name);
  if (idx < 0) {
    return Status::NotFound("event type '" + name_ + "' has no attribute '" +
                            std::string(name) + "'");
  }
  return idx;
}

std::string EventSchema::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ":";
    out += ValueTypeName(attributes_[i].type);
  }
  out += ")";
  return out;
}

Result<EventTypeId> SchemaRegistry::Register(
    std::string name, std::vector<AttributeDef> attributes) {
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("event type '" + name + "' already registered");
  }
  const auto id = static_cast<EventTypeId>(schemas_.size());
  schemas_.push_back(
      std::make_shared<EventSchema>(name, std::move(attributes)));
  by_name_.emplace(std::move(name), id);
  return id;
}

EventTypeId SchemaRegistry::FindType(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kInvalidEventType : it->second;
}

Result<EventTypeId> SchemaRegistry::GetType(std::string_view name) const {
  const EventTypeId id = FindType(name);
  if (id == kInvalidEventType) {
    return Status::NotFound("unknown event type '" + std::string(name) + "'");
  }
  return id;
}

}  // namespace cep
