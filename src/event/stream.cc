#include "event/stream.h"

#include <algorithm>

namespace cep {

std::vector<EventPtr> EventStream::Drain() {
  std::vector<EventPtr> out;
  while (EventPtr e = Next()) out.push_back(std::move(e));
  return out;
}

MergedEventStream::MergedEventStream(
    std::vector<std::unique_ptr<EventStream>> inputs)
    : inputs_(std::move(inputs)) {
  heads_.resize(inputs_.size());
  for (size_t i = 0; i < inputs_.size(); ++i) heads_[i] = inputs_[i]->Next();
}

EventPtr MergedEventStream::Next() {
  // Linear scan over the heads: the stream fan-in is small in practice
  // (a handful of workload generators), so a heap would not pay off.
  int best = -1;
  for (size_t i = 0; i < heads_.size(); ++i) {
    if (heads_[i] == nullptr) continue;
    if (best < 0 ||
        heads_[i]->timestamp() < heads_[best]->timestamp() ||
        (heads_[i]->timestamp() == heads_[best]->timestamp() &&
         heads_[i]->sequence() < heads_[best]->sequence())) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) return nullptr;
  EventPtr out = std::move(heads_[best]);
  heads_[best] = inputs_[best]->Next();
  return out;
}

void SortEvents(std::vector<EventPtr>* events) {
  std::stable_sort(events->begin(), events->end(),
                   [](const EventPtr& a, const EventPtr& b) {
                     if (a->timestamp() != b->timestamp()) {
                       return a->timestamp() < b->timestamp();
                     }
                     return a->sequence() < b->sequence();
                   });
}

}  // namespace cep
