#ifndef CEPSHED_EVENT_CSV_H_
#define CEPSHED_EVENT_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "event/event.h"
#include "event/schema.h"

namespace cep {

/// \brief Line-oriented CSV serialisation for heterogeneous event streams.
///
/// Each line is `type,timestamp,v1,v2,...` with values in schema attribute
/// order. Strings containing commas, quotes, or newlines are double-quoted
/// with `""` escaping. Null values serialise as the empty field.
///
/// This is the interchange format used to snapshot synthetic workloads so
/// experiments can be re-run on identical inputs.

/// Serialises one event to a CSV line (no trailing newline).
std::string EventToCsvLine(const Event& event);

/// Writes all events, one per line.
Status WriteEventsCsv(std::ostream& out, const std::vector<EventPtr>& events);
Status WriteEventsCsvFile(const std::string& path,
                          const std::vector<EventPtr>& events);

/// Parses one CSV line against the registry; sequence is assigned by caller.
Result<EventPtr> EventFromCsvLine(const SchemaRegistry& registry,
                                  std::string_view line, uint64_t sequence);

/// \brief Error-budget mode for ReadEventsCsv.
///
/// With `max_consecutive_errors == 0` (default) the first malformed record
/// fails the whole read. A positive value quarantines malformed records —
/// they are skipped and counted — and the read only fails once that many
/// *consecutive* records are bad (a long bad run means the file, not a
/// record, is broken).
struct CsvReadOptions {
  size_t max_consecutive_errors = 0;

  /// Upper bound on one logical record's size in bytes, including quoted
  /// multi-line continuations. Input is read in bounded chunks, so an
  /// attacker-sized record never materialises in memory: once the bound is
  /// hit the rest of the record is discarded unread and the record is
  /// quarantined (or, in strict mode, fails the read) with a distinct
  /// oversized reason. 0 disables the bound.
  size_t max_record_bytes = 1 << 20;
};

/// Counters reported by a quarantining read.
struct CsvReadStats {
  uint64_t lines_read = 0;        ///< non-blank records seen
  uint64_t quarantined = 0;       ///< malformed records skipped
  uint64_t oversized = 0;         ///< records discarded for exceeding
                                  ///< max_record_bytes (also counted in
                                  ///< quarantined)
  std::string last_error;         ///< diagnostic for the latest bad record
};

/// Reads a whole CSV stream; events get dense sequence numbers in file order.
Result<std::vector<EventPtr>> ReadEventsCsv(const SchemaRegistry& registry,
                                            std::istream& in);
Result<std::vector<EventPtr>> ReadEventsCsv(const SchemaRegistry& registry,
                                            std::istream& in,
                                            const CsvReadOptions& options,
                                            CsvReadStats* stats);
Result<std::vector<EventPtr>> ReadEventsCsvFile(const SchemaRegistry& registry,
                                                const std::string& path);
Result<std::vector<EventPtr>> ReadEventsCsvFile(const SchemaRegistry& registry,
                                                const std::string& path,
                                                const CsvReadOptions& options,
                                                CsvReadStats* stats);

/// Splits a CSV record into fields, honouring double-quote escaping.
/// Exposed for testing.
Result<std::vector<std::string>> SplitCsvRecord(std::string_view line);

}  // namespace cep

#endif  // CEPSHED_EVENT_CSV_H_
