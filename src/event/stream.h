#ifndef CEPSHED_EVENT_STREAM_H_
#define CEPSHED_EVENT_STREAM_H_

#include <functional>
#include <memory>
#include <vector>

#include "event/event.h"

namespace cep {

/// \brief Pull-based source of timestamp-ordered events.
///
/// Next() returns nullptr at end-of-stream. Implementations must produce
/// events in non-decreasing timestamp order; the engine checks this in debug
/// builds and relies on it for window expiry.
class EventStream {
 public:
  virtual ~EventStream() = default;

  /// Returns the next event, or nullptr when the stream is exhausted.
  virtual EventPtr Next() = 0;

  /// Drains the remainder of the stream into a vector (testing convenience).
  std::vector<EventPtr> Drain();
};

/// \brief Stream over a pre-materialised, ordered vector of events.
class VectorEventStream : public EventStream {
 public:
  explicit VectorEventStream(std::vector<EventPtr> events)
      : events_(std::move(events)) {}

  EventPtr Next() override {
    if (pos_ >= events_.size()) return nullptr;
    return events_[pos_++];
  }

  /// Rewinds to the first event (useful for golden-vs-shedding replays).
  void Reset() { pos_ = 0; }

  size_t size() const { return events_.size(); }

 private:
  std::vector<EventPtr> events_;
  size_t pos_ = 0;
};

/// \brief Stream adapter around a generator callback.
///
/// The callback returns nullptr to signal end-of-stream.
class CallbackEventStream : public EventStream {
 public:
  explicit CallbackEventStream(std::function<EventPtr()> generator)
      : generator_(std::move(generator)) {}

  EventPtr Next() override { return generator_(); }

 private:
  std::function<EventPtr()> generator_;
};

/// \brief K-way merge of timestamp-ordered streams into one ordered stream.
///
/// Ties are broken by input index, then by event sequence number, so merges
/// are deterministic.
class MergedEventStream : public EventStream {
 public:
  explicit MergedEventStream(std::vector<std::unique_ptr<EventStream>> inputs);

  EventPtr Next() override;

 private:
  std::vector<std::unique_ptr<EventStream>> inputs_;
  std::vector<EventPtr> heads_;  // buffered head per input; nullptr = drained
};

/// Sorts events by (timestamp, sequence); used by workload generators that
/// emit per-entity traces which must be interleaved.
void SortEvents(std::vector<EventPtr>* events);

}  // namespace cep

#endif  // CEPSHED_EVENT_STREAM_H_
