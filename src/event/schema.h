#ifndef CEPSHED_EVENT_SCHEMA_H_
#define CEPSHED_EVENT_SCHEMA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/value.h"

namespace cep {

/// Numeric identifier of an event type within a SchemaRegistry.
using EventTypeId = uint32_t;
constexpr EventTypeId kInvalidEventType = UINT32_MAX;

/// \brief One named, typed attribute of an event type.
struct AttributeDef {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// \brief Immutable description of one event type: a name plus an ordered
/// list of typed attributes.
///
/// Schemas are shared between all events of the type (`std::shared_ptr`), so
/// per-event storage is just the attribute value vector.
class EventSchema {
 public:
  EventSchema(std::string name, std::vector<AttributeDef> attributes);

  const std::string& name() const { return name_; }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  size_t num_attributes() const { return attributes_.size(); }

  /// Index of the attribute named `name`, or -1 if absent.
  int FindAttribute(std::string_view name) const;

  /// Like FindAttribute but returns NotFound with a descriptive message.
  Result<int> GetAttributeIndex(std::string_view name) const;

  const AttributeDef& attribute(int index) const { return attributes_[index]; }

  /// "type(attr1:int, attr2:string, ...)"
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<AttributeDef> attributes_;
  std::unordered_map<std::string, int> index_;
};

using SchemaPtr = std::shared_ptr<const EventSchema>;

/// \brief Maps event type names to schemas and dense EventTypeIds.
///
/// The registry is the unit of agreement between stream producers, queries,
/// and the engine: a query can only reference event types registered here.
class SchemaRegistry {
 public:
  SchemaRegistry() = default;

  /// Registers a new event type; fails with AlreadyExists on duplicates.
  Result<EventTypeId> Register(std::string name,
                               std::vector<AttributeDef> attributes);

  /// Id for `name`, or kInvalidEventType if unknown.
  EventTypeId FindType(std::string_view name) const;

  Result<EventTypeId> GetType(std::string_view name) const;

  /// Schema for a registered id; id must be valid.
  const SchemaPtr& schema(EventTypeId id) const { return schemas_[id]; }

  size_t num_types() const { return schemas_.size(); }

 private:
  std::vector<SchemaPtr> schemas_;
  std::unordered_map<std::string, EventTypeId> by_name_;
};

}  // namespace cep

#endif  // CEPSHED_EVENT_SCHEMA_H_
