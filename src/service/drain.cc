#include "service/drain.h"

namespace cep {
namespace service {

Status DrainEngine(Engine& engine, bool flush_runs) {
  if (flush_runs) CEP_RETURN_NOT_OK(engine.Flush());
  if (engine.options().checkpoint.enabled()) {
    CEP_RETURN_NOT_OK(engine.Checkpoint());
  }
  return engine.FlushCheckpoints();
}

}  // namespace service
}  // namespace cep
