#include "service/tenant.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "ckpt/io.h"
#include "ckpt/snapshot.h"
#include "common/string_util.h"
#include "event/csv.h"
#include "nfa/compiler.h"
#include "query/analyzer.h"
#include "query/parser.h"
#include "shedding/registry.h"
#include "workload/bikeshare.h"
#include "workload/google_trace.h"
#include "workload/stock.h"

namespace cep {
namespace service {

namespace {

constexpr const char* kMetaMagic = "cepshed-tenant-meta v1";
constexpr const char* kMetaFile = "queries.meta";
constexpr const char* kWalFile = "wal.csv";
constexpr const char* kCkptDir = "ckpts";
constexpr const char* kCoreSection = "tenant.core";
constexpr const char* kQuerySectionPrefix = "query.";
constexpr uint32_t kCoreVersion = 1;

Result<uint64_t> KvUint(const std::map<std::string, std::string>& kv,
                        const std::string& key, uint64_t fallback) {
  const auto it = kv.find(key);
  if (it == kv.end()) return fallback;
  CEP_ASSIGN_OR_RETURN(int64_t v, ParseInt64(it->second));
  if (v < 0) {
    return Status::InvalidArgument("option " + key + " must be >= 0");
  }
  return static_cast<uint64_t>(v);
}

Result<double> KvDouble(const std::map<std::string, std::string>& kv,
                        const std::string& key, double fallback) {
  const auto it = kv.find(key);
  if (it == kv.end()) return fallback;
  return ParseDouble(it->second);
}

Status WriteTextFileAtomic(const std::string& path, const std::string& text) {
  return ckpt::WriteFileAtomic(path, text);
}

}  // namespace

Result<std::map<std::string, std::string>> ParseKvSpec(
    std::string_view spec) {
  std::map<std::string, std::string> kv;
  std::istringstream in{std::string(spec)};
  std::string token;
  while (in >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::ParseError("expected k=v, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    if (!kv.emplace(key, token.substr(eq + 1)).second) {
      return Status::InvalidArgument("duplicate option '" + key + "'");
    }
  }
  return kv;
}

Result<EngineOptions> MakeEngineOptionsFromSpec(
    const std::map<std::string, std::string>& kv, double default_theta,
    size_t quota_bytes) {
  EngineOptions options;
  // Service invariants, not tenant choices: the virtual-cost clock makes
  // recovery byte-identical, collected matches are engine state so a
  // restored engine re-emits exactly what the interrupted one produced,
  // and checkpointing happens at the tenant level (atomic across engines).
  options.latency_mode = LatencyMode::kVirtualCost;
  options.collect_matches = true;
  CEP_ASSIGN_OR_RETURN(options.latency_threshold_micros,
                       KvDouble(kv, "theta", default_theta));
  CEP_ASSIGN_OR_RETURN(options.shed_amount.fraction,
                       KvDouble(kv, "fraction", options.shed_amount.fraction));
  CEP_ASSIGN_OR_RETURN(
      uint64_t cooldown,
      KvUint(kv, "cooldown", options.shed_cooldown_events));
  options.shed_cooldown_events = static_cast<size_t>(cooldown);
  CEP_ASSIGN_OR_RETURN(uint64_t max_runs, KvUint(kv, "maxruns", 0));
  options.max_runs = static_cast<size_t>(max_runs);
  CEP_ASSIGN_OR_RETURN(uint64_t selection, KvUint(kv, "selection", 0));
  if (selection > 2) {
    return Status::InvalidArgument("selection must be 0, 1, or 2");
  }
  options.selection = static_cast<SelectionStrategy>(selection);
  CEP_ASSIGN_OR_RETURN(uint64_t threads, KvUint(kv, "threads", 0));
  options.parallel.threads = static_cast<size_t>(threads);
  CEP_ASSIGN_OR_RETURN(uint64_t shards, KvUint(kv, "shards", 0));
  options.parallel.shards = static_cast<size_t>(shards);
  CEP_ASSIGN_OR_RETURN(
      uint64_t min_parallel,
      KvUint(kv, "minparallel", options.parallel.min_parallel_runs));
  options.parallel.min_parallel_runs = static_cast<size_t>(min_parallel);
  CEP_ASSIGN_OR_RETURN(uint64_t arena, KvUint(kv, "arena", 0));
  options.parallel.arena_block_runs = static_cast<size_t>(arena);
  CEP_ASSIGN_OR_RETURN(uint64_t batch, KvUint(kv, "batch", 1));
  options.batch_size = static_cast<size_t>(batch);
  // Poison events must not take down a tenant: the error budget is on by
  // default in service mode (errorbudget=0 opts out for strict engines).
  CEP_ASSIGN_OR_RETURN(uint64_t error_budget, KvUint(kv, "errorbudget", 64));
  options.error_budget.enabled = error_budget > 0;
  options.error_budget.max_consecutive_errors =
      static_cast<size_t>(error_budget);
  if (quota_bytes > 0) {
    options.degradation.enabled = true;
    options.degradation.run_bytes_budget = quota_bytes;
  }
  // Shedding-quality observability (docs/OBSERVABILITY.md): shadow=N
  // samples one span in N through the unshed ghost oracle, calibration=1
  // joins model predictions against run outcomes, slo=<frac> tracks θ
  // burn rates against that violation budget.
  CEP_ASSIGN_OR_RETURN(uint64_t shadow, KvUint(kv, "shadow", 0));
  options.quality.shadow.sample_every = static_cast<size_t>(shadow);
  CEP_ASSIGN_OR_RETURN(uint64_t shadow_width, KvUint(kv, "shadowwidth", 0));
  options.quality.shadow.span_width = static_cast<int64_t>(shadow_width);
  CEP_ASSIGN_OR_RETURN(uint64_t calibration, KvUint(kv, "calibration", 0));
  options.quality.calibration.enabled = calibration > 0;
  CEP_ASSIGN_OR_RETURN(double slo_budget, KvDouble(kv, "slo", 0.0));
  if (slo_budget > 0) {
    options.quality.slo.enabled = true;
    options.quality.slo.budget_fraction = slo_budget;
  }
  return options.Validated();
}

Result<ShedderPtr> MakeShedderFromSpec(
    const std::map<std::string, std::string>& kv,
    const SchemaRegistry& registry) {
  const auto it = kv.find("shedder");
  const std::string spec = it == kv.end() ? "none" : it->second;
  // The value may itself be an inline registry spec — "sbls(slices=32)" —
  // since flat-form values cannot contain whitespace. Parse it, then overlay
  // the remaining flat keys as strategy parameters (inline keys win); the
  // registry filters the merged map down to the strategy's own knobs, so
  // engine options travelling in the same kv map are ignored here.
  CEP_ASSIGN_OR_RETURN(auto parsed, ShedderRegistry::ParseSpec(spec));
  ShedderParams params = kv;
  params.erase("shedder");
  for (const auto& [key, value] : parsed.second) {
    params[key] = value;
  }
  ShedderEnv env;
  env.schema = &registry;
  return ShedderRegistry::MakeFromParams(parsed.first, params, env);
}

std::string FormatMatch(const Match& match, const ParsedQuery& query) {
  if (match.complex_event != nullptr) {
    return EventToCsvLine(*match.complex_event);
  }
  return match.ToString(query);
}

TenantSession::TenantSession(Config config) : config_(std::move(config)) {}

TenantSession::~TenantSession() = default;

std::string TenantSession::CheckpointDirectory() const {
  return config_.root + "/" + kCkptDir;
}

Result<TenantSession::MetaHeader> TenantSession::ReadMetaHeader(
    const std::string& root) {
  std::ifstream in(root + "/" + kMetaFile);
  if (!in) {
    return Status::NotFound("no tenant meta under '" + root + "'");
  }
  std::string line;
  if (!std::getline(in, line) || line != kMetaMagic) {
    return Status::ParseError("bad tenant meta magic under '" + root + "'");
  }
  MetaHeader header;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "theta") fields >> header.theta;
    if (key == "weight") fields >> header.weight;
  }
  return header;
}

Result<std::unique_ptr<TenantSession>> TenantSession::Create(Config config) {
  if (!ckpt::IsSafePathComponent(config.tenant)) {
    return Status::InvalidArgument("unsafe tenant name '" + config.tenant +
                                   "'");
  }
  std::unique_ptr<TenantSession> session(new TenantSession(std::move(config)));
  CEP_RETURN_NOT_OK(session->InitStorage());
  CEP_RETURN_NOT_OK(session->WriteMeta());
  return session;
}

Result<std::unique_ptr<TenantSession>> TenantSession::Recover(Config config) {
  std::unique_ptr<TenantSession> session(new TenantSession(std::move(config)));
  CEP_RETURN_NOT_OK(session->InitStorage());
  CEP_RETURN_NOT_OK(session->LoadMeta());
  CEP_RETURN_NOT_OK(session->RestoreAndReplay());
  return session;
}

Status TenantSession::InitStorage() {
  CEP_RETURN_NOT_OK(ckpt::EnsureDirectory(config_.root));
  CEP_RETURN_NOT_OK(ckpt::EnsureDirectory(CheckpointDirectory()));
  CEP_ASSIGN_OR_RETURN(
      wal_, Wal::Open(config_.root + "/" + kWalFile, config_.wal_sync));
  ckpt_ = std::make_unique<ckpt::CheckpointManager>(CheckpointDirectory(),
                                                    config_.ckpt_keep);
  return Status::OK();
}

Status TenantSession::WriteMeta() const {
  std::string text = kMetaMagic;
  text += '\n';
  text += StrFormat("theta %.17g\nweight %.17g\n", config_.theta,
                    config_.weight);
  for (const std::string& command : schema_commands_) {
    text += "schema " + command + "\n";
  }
  for (const auto& q : queries_) {
    text += StrFormat("query %s %llu %u %s :: %s\n", q->name.c_str(),
                      static_cast<unsigned long long>(q->birth_offset),
                      q->obs_id, q->spec.c_str(), q->text.c_str());
  }
  return WriteTextFileAtomic(config_.root + "/" + kMetaFile, text);
}

Status TenantSession::LoadMeta() {
  std::ifstream in(config_.root + "/" + kMetaFile);
  if (!in) {
    return Status::NotFound("no tenant meta under '" + config_.root + "'");
  }
  std::string line;
  if (!std::getline(in, line) || line != kMetaMagic) {
    return Status::ParseError("bad tenant meta magic under '" + config_.root +
                              "'");
  }
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (StripWhitespace(line).empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "theta") {
      fields >> config_.theta;
    } else if (key == "weight") {
      fields >> config_.weight;
    } else if (key == "schema") {
      std::string rest;
      std::getline(fields, rest);
      std::vector<std::string> args;
      std::istringstream arg_stream(rest);
      std::string arg;
      while (arg_stream >> arg) args.push_back(arg);
      CEP_RETURN_NOT_OK(ApplySchemaCommand(args).WithContext(
          StrFormat("meta line %zu", line_no)));
    } else if (key == "query") {
      std::string name;
      uint64_t birth = 0;
      uint32_t obs_id = 0;
      fields >> name >> birth >> obs_id;
      std::string rest;
      std::getline(fields, rest);
      const size_t sep = rest.find(" :: ");
      if (!fields || sep == std::string::npos) {
        return Status::ParseError(
            StrFormat("meta line %zu: malformed query entry", line_no));
      }
      std::string spec{StripWhitespace(rest.substr(0, sep))};
      const std::string text = rest.substr(sep + 4);
      CEP_ASSIGN_OR_RETURN(auto query,
                           BuildQuery(name, spec, text, birth, obs_id));
      queries_.push_back(std::move(query));
      next_obs_id_ = std::max(next_obs_id_, obs_id + 1);
    } else {
      return Status::ParseError(
          StrFormat("meta line %zu: unknown key '%s'", line_no, key.c_str()));
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<TenantSession::QueryState>> TenantSession::BuildQuery(
    const std::string& name, const std::string& spec, const std::string& text,
    uint64_t birth_offset, uint32_t obs_id) {
  if (!ckpt::IsSafePathComponent(name)) {
    return Status::InvalidArgument("unsafe query name '" + name + "'");
  }
  CEP_ASSIGN_OR_RETURN(auto kv, ParseKvSpec(spec));
  CEP_ASSIGN_OR_RETURN(
      EngineOptions options,
      MakeEngineOptionsFromSpec(kv, config_.theta, config_.quota_bytes));
  CEP_ASSIGN_OR_RETURN(ShedderPtr shedder,
                       MakeShedderFromSpec(kv, registry_));
  CEP_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(text));
  CEP_ASSIGN_OR_RETURN(AnalyzedQuery analyzed,
                       Analyze(std::move(parsed), registry_));
  CEP_ASSIGN_OR_RETURN(NfaPtr nfa, CompileToNfa(std::move(analyzed)));
  auto query = std::make_unique<QueryState>();
  query->name = name;
  query->spec = spec;
  query->text = text;
  query->birth_offset = birth_offset;
  query->obs_id = obs_id;
  query->nfa = nfa;
  query->audit = std::make_unique<obs::ShedAuditLog>(config_.audit_capacity);
  query->engine =
      std::make_unique<Engine>(std::move(nfa), options, std::move(shedder));
  query->engine->SetObsId(obs_id);
  query->engine->AttachAuditLog(query->audit.get());
  return query;
}

Status TenantSession::RestoreAndReplay() {
  uint64_t snapshot_offset = 0;
  auto latest = ckpt::CheckpointManager::FindLatest(CheckpointDirectory());
  if (latest.ok()) {
    CEP_ASSIGN_OR_RETURN(std::string bytes,
                         ckpt::ReadFileBytes(latest.ValueOrDie()));
    CEP_ASSIGN_OR_RETURN(ckpt::SnapshotView view, ckpt::ParseSnapshot(bytes));
    snapshot_offset = view.stream_offset;
    const ckpt::SnapshotSection* core = view.Find(kCoreSection);
    if (core == nullptr) {
      return Status::DataLoss("tenant snapshot missing " +
                              std::string(kCoreSection));
    }
    ckpt::Source source(core->payload);
    CEP_ASSIGN_OR_RETURN(uint32_t version, source.ReadU32());
    if (version != kCoreVersion) {
      return Status::DataLoss(
          StrFormat("tenant core section version %u, want %u", version,
                    kCoreVersion));
    }
    CEP_ASSIGN_OR_RETURN(quarantined_, source.ReadU64());
    for (auto& q : queries_) {
      const ckpt::SnapshotSection* section =
          view.Find(kQuerySectionPrefix + q->name);
      if (section == nullptr) continue;  // query born after this snapshot
      CEP_RETURN_NOT_OK(
          q->engine->RestoreFromSnapshot(section->payload)
              .WithContext("restoring query '" + q->name + "'"));
    }
  } else if (!latest.status().IsNotFound()) {
    return latest.status();
  }
  // Lockstep WAL replay. Each engine resumes at birth_offset +
  // stream_offset() — the tenant snapshot is atomic, so every engine
  // restored above resumes at snapshot_offset, and engines born later
  // resume at their birth. Feed each tail record only to engines that have
  // not consumed it.
  uint64_t replay_after = wal_->count();
  for (const auto& q : queries_) {
    replay_after =
        std::min(replay_after, q->birth_offset + q->engine->stream_offset());
  }
  if (queries_.empty()) replay_after = wal_->count();
  CEP_RETURN_NOT_OK(wal_->Replay(
      replay_after, [&](uint64_t ordinal, std::string_view record) -> Status {
        CEP_ASSIGN_OR_RETURN(EventPtr event,
                             EventFromCsvLine(registry_, record, ordinal));
        for (auto& q : queries_) {
          if (ordinal <= q->birth_offset + q->engine->stream_offset()) {
            continue;
          }
          CEP_RETURN_NOT_OK(q->engine->OfferEvent(event).WithContext(
              StrFormat("WAL replay record %llu query '%s'",
                        static_cast<unsigned long long>(ordinal),
                        q->name.c_str())));
        }
        RefreshSharedPressure();
        return Status::OK();
      }));
  events_since_ckpt_ = wal_->count() - snapshot_offset;
  return Status::OK();
}

Status TenantSession::ApplySchemaCommand(
    const std::vector<std::string>& args) {
  if (args.empty()) {
    return Status::InvalidArgument("schema command needs arguments");
  }
  std::string command = args[0];
  for (size_t i = 1; i < args.size(); ++i) command += " " + args[i];
  if (std::find(schema_commands_.begin(), schema_commands_.end(), command) !=
      schema_commands_.end()) {
    return Status::OK();  // idempotent re-send (client resume)
  }
  if (args.size() == 1) {
    if (args[0] == "cluster") {
      CEP_RETURN_NOT_OK(GoogleTraceGenerator::RegisterSchemas(&registry_));
    } else if (args[0] == "bike") {
      CEP_RETURN_NOT_OK(BikeShareGenerator::RegisterSchemas(&registry_));
    } else if (args[0] == "stock") {
      CEP_RETURN_NOT_OK(StockGenerator::RegisterSchemas(&registry_));
    } else {
      return Status::InvalidArgument(
          "schema with one argument must name a builtin bundle "
          "(cluster|bike|stock); to register a type, pass attr:type pairs");
    }
  } else {
    std::vector<AttributeDef> attrs;
    for (size_t i = 1; i < args.size(); ++i) {
      const size_t colon = args[i].find(':');
      if (colon == std::string::npos) {
        return Status::ParseError("schema expects attr:type, got '" +
                                  args[i] + "'");
      }
      const std::string type_name = args[i].substr(colon + 1);
      ValueType vt;
      if (type_name == "int") {
        vt = ValueType::kInt;
      } else if (type_name == "double") {
        vt = ValueType::kDouble;
      } else if (type_name == "string") {
        vt = ValueType::kString;
      } else if (type_name == "bool") {
        vt = ValueType::kBool;
      } else {
        return Status::ParseError("unknown attribute type '" + type_name +
                                  "'");
      }
      attrs.push_back(AttributeDef{args[i].substr(0, colon), vt});
    }
    CEP_RETURN_NOT_OK(registry_.Register(args[0], std::move(attrs)).status());
  }
  schema_commands_.push_back(std::move(command));
  return WriteMeta();
}

Status TenantSession::AddQuery(const std::string& name,
                               const std::string& spec,
                               const std::string& text) {
  for (const auto& q : queries_) {
    if (q->name == name) {
      if (q->text == text && q->spec == spec) return Status::OK();
      return Status::AlreadyExists("query '" + name +
                                   "' exists with a different definition");
    }
  }
  CEP_ASSIGN_OR_RETURN(
      auto query, BuildQuery(name, spec, text, wal_->count(), next_obs_id_));
  ++next_obs_id_;
  queries_.push_back(std::move(query));
  RefreshSharedPressure();
  return WriteMeta();
}

Status TenantSession::DropQuery(const std::string& name) {
  const auto it = std::find_if(
      queries_.begin(), queries_.end(),
      [&name](const std::unique_ptr<QueryState>& q) { return q->name == name; });
  if (it == queries_.end()) {
    return Status::NotFound("no query '" + name + "'");
  }
  queries_.erase(it);
  RefreshSharedPressure();
  return WriteMeta();
}

Status TenantSession::IngestLine(std::string_view line) {
  const uint64_t ordinal = wal_->count() + 1;
  auto parsed = EventFromCsvLine(registry_, line, ordinal);
  if (!parsed.ok()) {
    ++quarantined_;
    last_error_ = parsed.status().ToString();
    return parsed.status();
  }
  if (line.find('\n') != std::string_view::npos) {
    // Multi-line quoted records cannot ride the line-oriented WAL; the
    // client must send them without embedded newlines.
    ++quarantined_;
    Status st = Status::InvalidArgument(
        "event records with embedded newlines are not supported in service "
        "mode");
    last_error_ = st.ToString();
    return st;
  }
  // WAL before processing: once an engine has seen the event, a crash must
  // replay it — so it must already be on disk.
  CEP_RETURN_NOT_OK(wal_->Append(line));
  const EventPtr event = parsed.MoveValueUnsafe();
  for (auto& q : queries_) {
    CEP_RETURN_NOT_OK(q->engine->OfferEvent(event).WithContext(
        "query '" + q->name + "'"));
  }
  RefreshSharedPressure();
  ++events_since_ckpt_;
  if (config_.checkpoint_interval_events > 0 &&
      events_since_ckpt_ >= config_.checkpoint_interval_events) {
    CEP_RETURN_NOT_OK(Checkpoint(/*synchronous=*/false));
  }
  return Status::OK();
}

void TenantSession::RefreshSharedPressure() {
  if (config_.quota_bytes == 0) return;
  size_t total = 0;
  for (const auto& q : queries_) total += q->engine->approx_run_bytes();
  for (auto& q : queries_) {
    q->engine->SetExternalRunBytes(total - q->engine->approx_run_bytes());
  }
}

Status TenantSession::Checkpoint(bool synchronous) {
  ckpt::SnapshotBuilder builder(wal_->count());
  ckpt::Sink core;
  core.WriteU32(kCoreVersion);
  core.WriteU64(quarantined_);
  builder.AddSection(kCoreSection, core.bytes());
  for (auto& q : queries_) {
    CEP_ASSIGN_OR_RETURN(std::string bytes, q->engine->SerializeSnapshot());
    builder.AddSection(kQuerySectionPrefix + q->name, bytes);
  }
  std::string blob = builder.Finish();
  events_since_ckpt_ = 0;
  if (synchronous) {
    // A pending async snapshot at this same WAL offset would share the
    // .tmp path with WriteNow; wait it out so the rename cannot race.
    CEP_RETURN_NOT_OK(ckpt_->Flush());
    return ckpt_->WriteNow(blob, wal_->count());
  }
  ckpt_->SubmitAsync(std::move(blob), wal_->count());
  return Status::OK();
}

Status TenantSession::Drain(const std::string& out_dir) {
  for (auto& q : queries_) {
    CEP_RETURN_NOT_OK(
        q->engine->Flush().WithContext("flushing query '" + q->name + "'"));
  }
  CEP_RETURN_NOT_OK(Checkpoint(/*synchronous=*/true));
  CEP_RETURN_NOT_OK(ckpt_->Flush());
  CEP_RETURN_NOT_OK(ckpt::EnsureDirectory(out_dir));
  const std::string prefix = out_dir + "/" + config_.tenant;
  for (const auto& q : queries_) {
    std::string matches;
    for (const Match& match : q->engine->matches()) {
      matches += FormatMatch(match, q->engine->nfa().query());
      matches += '\n';
    }
    CEP_RETURN_NOT_OK(WriteTextFileAtomic(
        prefix + "--" + q->name + ".matches.csv", matches));
    CEP_RETURN_NOT_OK(
        WriteTextFileAtomic(prefix + "--" + q->name + ".metrics.txt",
                            q->engine->metrics().ToString() + "\n"));
    CEP_RETURN_NOT_OK(WriteTextFileAtomic(
        prefix + "--" + q->name + ".audit.jsonl", q->audit->ToJsonl()));
  }
  obs::Registry registry;
  ExportMetrics(&registry);
  CEP_RETURN_NOT_OK(WriteTextFileAtomic(prefix + ".metrics.prom",
                                        registry.ToPrometheusText()));
  return Status::OK();
}

size_t TenantSession::TotalRunBytes() const {
  size_t total = 0;
  for (const auto& q : queries_) total += q->engine->approx_run_bytes();
  return total;
}

std::string TenantSession::StatsText() const {
  std::string out = StrFormat(
      "tenant=%s ingested=%llu quarantined=%llu run_bytes=%zu\n",
      config_.tenant.c_str(), static_cast<unsigned long long>(wal_->count()),
      static_cast<unsigned long long>(quarantined_), TotalRunBytes());
  for (const auto& q : queries_) {
    out += StrFormat("query=%s %s\n", q->name.c_str(),
                     q->engine->metrics().ToString().c_str());
    if (q->engine->options().quality.any_enabled()) {
      out += StrFormat("quality=%s %s\n", q->name.c_str(),
                       q->engine->ExportQualityJson().c_str());
    }
  }
  return out;
}

void TenantSession::ExportMetrics(obs::Registry* registry) const {
  for (const auto& q : queries_) {
    q->engine->ExportMetrics(
        registry, {{"tenant", config_.tenant}, {"query", q->name}});
  }
  registry
      ->GetCounter("cep_tenant_ingested_total",
                   "Events appended to the tenant WAL",
                   {{"tenant", config_.tenant}})
      ->Set(wal_->count());
  registry
      ->GetCounter("cep_tenant_quarantined_total",
                   "Records quarantined before the WAL (parse errors)",
                   {{"tenant", config_.tenant}})
      ->Set(quarantined_);
  registry
      ->GetGauge("cep_tenant_run_bytes", "Run-set bytes across the tenant",
                 {{"tenant", config_.tenant}})
      ->Set(static_cast<double>(TotalRunBytes()));
}

std::vector<std::string> TenantSession::QueryNames() const {
  std::vector<std::string> names;
  names.reserve(queries_.size());
  for (const auto& q : queries_) names.push_back(q->name);
  return names;
}

Engine* TenantSession::FindEngine(const std::string& name) {
  for (auto& q : queries_) {
    if (q->name == name) return q->engine.get();
  }
  return nullptr;
}

}  // namespace service
}  // namespace cep
