#include "service/framing.h"

#include <algorithm>
#include <cstring>

#include "common/string_util.h"

namespace cep {
namespace service {

const char* ProtocolErrorName(ProtocolError reason) {
  switch (reason) {
    case ProtocolError::kOversizedLine: return "oversized_line";
    case ProtocolError::kOversizedFrame: return "oversized_frame";
  }
  return "?";
}

void FrameReader::Feed(const char* data, size_t size) {
  // Bytes being discarded never enter the buffer: an oversized frame's
  // body is dropped straight from the socket read, so a hostile frame
  // length cannot make the reader allocate.
  size_t offset = 0;
  if (discard_ > 0) {
    const size_t skip = std::min(discard_, size);
    discard_ -= skip;
    offset += skip;
  }
  if (discard_line_ && offset < size) {
    const char* nl = static_cast<const char*>(
        std::memchr(data + offset, '\n', size - offset));
    if (nl == nullptr) {
      offset = size;
    } else {
      offset = static_cast<size_t>(nl - data) + 1;
      discard_line_ = false;
    }
  }
  if (offset < size) buffer_.append(data + offset, size - offset);
}

void FrameReader::Compact() {
  if (consumed_ == 0) return;
  buffer_.erase(0, consumed_);
  consumed_ = 0;
}

Result<FrameReader::Message> FrameReader::Next() {
  Compact();
  if (buffer_.empty()) return Message{};
  if (static_cast<uint8_t>(buffer_[0]) == kFrameMagic) {
    if (buffer_.size() < kFrameHeaderBytes) return Message{};
    uint32_t length = 0;
    for (int i = 0; i < 4; ++i) {
      length |= static_cast<uint32_t>(static_cast<uint8_t>(buffer_[1 + i]))
                << (8 * i);
    }
    if (max_message_bytes_ > 0 && length > max_message_bytes_) {
      // Quarantine: skip the declared body (whatever part is already
      // buffered now, the rest as it streams through Feed) and resync on
      // the next message.
      const size_t buffered_body = buffer_.size() - kFrameHeaderBytes;
      const size_t drop = std::min<size_t>(length, buffered_body);
      buffer_.erase(0, kFrameHeaderBytes + drop);
      discard_ = length - drop;
      return Status::OutOfRange(
          StrFormat("protocol error %s: frame declares %u bytes (max %zu)",
                    ProtocolErrorName(ProtocolError::kOversizedFrame),
                    length, max_message_bytes_));
    }
    if (buffer_.size() < kFrameHeaderBytes + length) return Message{};
    Message m;
    m.have = true;
    m.binary = true;
    m.payload.assign(buffer_, kFrameHeaderBytes, length);
    consumed_ = kFrameHeaderBytes + length;
    return m;
  }
  const size_t nl = buffer_.find('\n');
  if (nl == std::string::npos) {
    if (max_message_bytes_ > 0 && buffer_.size() > max_message_bytes_) {
      // The line already exceeds the bound with no terminator in sight:
      // drop what is buffered and keep discarding until the '\n' arrives.
      buffer_.clear();
      discard_line_ = true;
      return Status::OutOfRange(
          StrFormat("protocol error %s: line exceeds %zu bytes",
                    ProtocolErrorName(ProtocolError::kOversizedLine),
                    max_message_bytes_));
    }
    return Message{};
  }
  if (max_message_bytes_ > 0 && nl > max_message_bytes_) {
    buffer_.erase(0, nl + 1);
    return Status::OutOfRange(
        StrFormat("protocol error %s: line exceeds %zu bytes",
                  ProtocolErrorName(ProtocolError::kOversizedLine),
                  max_message_bytes_));
  }
  Message m;
  m.have = true;
  m.payload.assign(buffer_, 0, nl);
  if (!m.payload.empty() && m.payload.back() == '\r') m.payload.pop_back();
  consumed_ = nl + 1;
  return m;
}

std::string EncodeFrame(std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.push_back(static_cast<char>(kFrameMagic));
  const auto length = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((length >> (8 * i)) & 0xff));
  }
  out.append(payload);
  return out;
}

}  // namespace service
}  // namespace cep
