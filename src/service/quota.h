#ifndef CEPSHED_SERVICE_QUOTA_H_
#define CEPSHED_SERVICE_QUOTA_H_

#include <cstddef>
#include <map>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace cep {
namespace service {

/// \brief Divides the server's global run-set byte budget among tenants and
/// gates admission (docs/SERVICE.md).
///
/// Each tenant holds a static weight in (0, 1], fixed at `!hello` time so a
/// tenant's shed behaviour never depends on who joins later (determinism:
/// the engines' degradation budgets are pure config). A tenant's quota is
/// weight x global budget; the sum of admitted weights may not exceed 1.
///
/// Admission control is the dynamic half: new tenants and new queries are
/// rejected while total run-set bytes across all tenants sit above
/// `admission_ratio` of the global budget — a saturated server sheds for
/// its existing tenants instead of taking on more work it cannot isolate.
class QuotaAllocator {
 public:
  /// `budget_bytes` 0 disables byte budgeting entirely: every quota is 0
  /// (engines run without a degradation byte budget) and admission never
  /// rejects on bytes.
  QuotaAllocator(size_t budget_bytes, double admission_ratio,
                 double default_weight)
      : budget_bytes_(budget_bytes),
        admission_ratio_(admission_ratio),
        default_weight_(default_weight) {}

  /// Reserves `weight` (<= 0 selects the default weight) for `tenant`.
  /// InvalidArgument for a weight outside (0, 1]; ResourceExhausted-style
  /// OutOfRange when the weight does not fit the remaining headroom or when
  /// `used_bytes` is already past the admission watermark. Re-admitting an
  /// existing tenant keeps its original weight (idempotent hello).
  Result<double> AdmitTenant(const std::string& tenant, double weight,
                             size_t used_bytes);

  /// Releases a tenant's reservation.
  void ReleaseTenant(const std::string& tenant);

  /// Gate for adding a query to an admitted tenant: only the byte
  /// watermark applies (weights were reserved at hello).
  Status AdmitQuery(size_t used_bytes) const;

  /// The byte quota backing `weight`: weight x budget (0 when budgeting is
  /// disabled).
  size_t QuotaBytes(double weight) const;

  double reserved_weight() const { return reserved_; }
  size_t budget_bytes() const { return budget_bytes_; }
  double default_weight() const { return default_weight_; }

 private:
  const size_t budget_bytes_;
  const double admission_ratio_;
  const double default_weight_;
  std::map<std::string, double> weights_;
  double reserved_ = 0.0;
};

}  // namespace service
}  // namespace cep

#endif  // CEPSHED_SERVICE_QUOTA_H_
