#ifndef CEPSHED_SERVICE_SERVER_H_
#define CEPSHED_SERVICE_SERVER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "service/framing.h"
#include "service/quota.h"
#include "service/tenant.h"

namespace cep {
namespace service {

/// Tuning and wiring for one cepshed_server instance (docs/SERVICE.md).
struct ServerOptions {
  std::string socket_path;     ///< Unix listener ("" = none)
  int tcp_port = 0;            ///< loopback TCP listener (0 = none)
  std::string root;            ///< tenant state root (WAL, meta, snapshots)
  std::string out_dir;         ///< drain artifacts ("" = root)

  size_t run_bytes_budget = 0;     ///< global run-set byte budget (0 = off)
  double admission_ratio = 0.9;    ///< reject new work above this fill level
  double default_weight = 0.25;    ///< tenant weight when !hello names none
  double default_theta = 0.0;      ///< tenant θ when !hello names none

  size_t queue_events = 1024;      ///< per-tenant ingest queue bound
  size_t pump_quantum = 256;       ///< events pumped per tenant per loop turn
  size_t checkpoint_interval_events = 256;
  size_t ckpt_keep = 3;
  bool wal_sync = false;

  int idle_timeout_ms = 0;         ///< close idle / half-framed conns (0 = off)
  size_t max_message_bytes = 1 << 20;
  size_t protocol_error_budget = 64;  ///< quarantine threshold per connection
};

/// \brief The cepshed service daemon: a single-threaded poll() loop serving
/// per-tenant CEP sessions over Unix/TCP sockets.
///
/// Lifecycle: Create() binds the listeners and crash-recovers every tenant
/// found under `root` (meta + snapshot + WAL-tail replay); Run() serves
/// until RequestStop() (or a byte on stop_write_fd(), which is what signal
/// handlers use), then drains: queued events are processed, every tenant
/// flushes, checkpoints, and writes its artifact files, and Run() returns.
///
/// Isolation: each tenant has a bounded ingest queue — when it fills, the
/// server simply stops reading that tenant's sockets (TCP/Unix flow control
/// pushes back on the client) while other tenants' queues keep draining.
/// Each loop turn pumps at most `pump_quantum` events per tenant,
/// round-robin, so one hot tenant cannot monopolise the loop. Byte budgets
/// are per-tenant quotas carved from `run_bytes_budget` (see
/// QuotaAllocator), fed to each engine's DegradationController.
class Server {
 public:
  static Result<std::unique_ptr<Server>> Create(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves until a stop is requested, then drains and returns. The
  /// returned status is the first drain failure (OK on a clean shutdown).
  Status Run();

  /// Requests a graceful stop; safe from any thread.
  void RequestStop();

  /// Write end of the self-pipe: a signal handler may write() one byte here
  /// (async-signal-safe) to trigger the same graceful stop.
  int stop_write_fd() const { return stop_pipe_[1]; }

  /// Bound TCP port (after Create; useful when options.tcp_port was
  /// ephemeral 0 is not supported — port 0 disables TCP).
  int tcp_port() const { return options_.tcp_port; }

  size_t num_tenants() const { return sessions_.size(); }
  TenantSession* FindTenant(const std::string& tenant);

  /// Full export: every tenant's engines plus server-level counters.
  void ExportMetrics(obs::Registry* registry) const;

 private:
  struct Connection {
    int fd = -1;
    FrameReader reader;
    std::string outbuf;
    TenantSession* session = nullptr;
    size_t protocol_errors = 0;
    int64_t last_activity_ms = 0;
    bool close_after_write = false;
    bool http = false;  ///< served an HTTP /metrics response
  };

  explicit Server(ServerOptions options);

  Status Bind();
  Status RecoverTenants();
  Status DrainAll();

  void AcceptPending(int listen_fd);
  void ReadFrom(Connection* conn);
  void Dispatch(Connection* conn, FrameReader::Message message);
  void HandleControl(Connection* conn, const std::string& payload);
  void HandleHttp(Connection* conn, const std::string& request_line);
  void EnqueueEvent(Connection* conn, std::string line);
  void PumpQueues(size_t per_tenant_quantum);
  void PumpTenant(const std::string& tenant, size_t quantum);
  void Reply(Connection* conn, const std::string& line);
  void ProtocolError(Connection* conn, const Status& status);
  void FlushOut(Connection* conn);
  void CloseConnection(size_t index);
  size_t TotalRunBytes() const;
  Result<TenantSession*> HandleHello(
      const std::string& tenant,
      const std::map<std::string, std::string>& kv);

  ServerOptions options_;
  QuotaAllocator quota_;
  int stop_pipe_[2] = {-1, -1};
  int unix_listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  bool stop_requested_ = false;

  std::map<std::string, std::unique_ptr<TenantSession>> sessions_;
  std::map<std::string, std::deque<std::string>> queues_;
  std::vector<std::unique_ptr<Connection>> connections_;

  // Server-level counters (exported next to the per-tenant metrics).
  uint64_t accepted_total_ = 0;
  uint64_t protocol_errors_total_ = 0;
  uint64_t admission_rejected_total_ = 0;
  uint64_t quarantined_connections_total_ = 0;
  uint64_t idle_closed_total_ = 0;
};

}  // namespace service
}  // namespace cep

#endif  // CEPSHED_SERVICE_SERVER_H_
