#ifndef CEPSHED_SERVICE_DRAIN_H_
#define CEPSHED_SERVICE_DRAIN_H_

#include "common/status.h"
#include "engine/engine.h"

namespace cep {
namespace service {

/// \brief Shared graceful-shutdown path for one engine (docs/SERVICE.md).
///
/// Used by the server's terminal drain and by cepshed_cli's SIGINT/SIGTERM
/// handler: make the engine's durable state safe before the process exits.
///
/// `flush_runs` controls Engine::Flush() — the server's drain is
/// end-of-stream (deferred final states must emit), while an interrupted
/// CLI run is mid-stream (flushing would emit matches the resumed run
/// would then emit again, breaking exactly-once resume).
///
/// When the engine has a checkpoint directory configured, a final
/// synchronous snapshot is written; background checkpoint writes are always
/// flushed and their first error surfaced.
Status DrainEngine(Engine& engine, bool flush_runs);

}  // namespace service
}  // namespace cep

#endif  // CEPSHED_SERVICE_DRAIN_H_
