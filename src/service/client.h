#ifndef CEPSHED_SERVICE_CLIENT_H_
#define CEPSHED_SERVICE_CLIENT_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace cep {
namespace service {

/// \brief Minimal blocking client for the cepshed_server protocol — used by
/// cepshed_client, the chaos harness, and stress_engine --server.
///
/// One connection, synchronous semantics: SendLine/SendFrame write fully or
/// fail; ReadLine blocks until one '\n'-terminated reply arrives. A peer
/// that dies mid-call surfaces as IoError (never SIGPIPE — the socket is
/// opened with SIGPIPE suppressed).
class BlockingClient {
 public:
  ~BlockingClient();
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  static Result<std::unique_ptr<BlockingClient>> ConnectUnix(
      const std::string& socket_path);
  static Result<std::unique_ptr<BlockingClient>> ConnectTcp(int port);

  /// Writes `line` + '\n' (the text encoding). `line` must not contain
  /// '\n'.
  Status SendLine(std::string_view line);

  /// Writes `payload` as a binary frame (0xCE + u32le length + payload).
  Status SendFrame(std::string_view payload);

  /// Blocks for the next '\n'-terminated line from the server (without the
  /// terminator, '\r' stripped). IoError on EOF/connection loss.
  Result<std::string> ReadLine();

  /// Sends a control line and reads one reply line; error if the reply
  /// starts with "!err".
  Result<std::string> Command(std::string_view line);

  /// Reads a "!begin <what>" ... "!end" block and returns the body.
  Result<std::string> ReadBlock();

 private:
  explicit BlockingClient(int fd) : fd_(fd) {}
  Status SendAll(const char* data, size_t size);

  int fd_ = -1;
  std::string inbuf_;
};

}  // namespace service
}  // namespace cep

#endif  // CEPSHED_SERVICE_CLIENT_H_
