#include "service/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/string_util.h"

namespace cep {
namespace service {

namespace {

Status Errno(const char* op, const std::string& path) {
  return Status::IoError(std::string(op) + " '" + path +
                         "': " + std::strerror(errno));
}

}  // namespace

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path, bool sync) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("open", path);
  // Scan for the last complete record: everything after the final '\n' is a
  // torn tail from an interrupted append and is cut off before counting.
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Errno("lseek", path);
  }
  uint64_t count = 0;
  off_t keep = 0;
  {
    char buf[1 << 16];
    off_t pos = 0;
    while (pos < size) {
      const size_t want =
          static_cast<size_t>(std::min<off_t>(sizeof(buf), size - pos));
      const ssize_t got = ::pread(fd, buf, want, pos);
      if (got < 0) {
        ::close(fd);
        return Errno("pread", path);
      }
      if (got == 0) break;
      for (ssize_t i = 0; i < got; ++i) {
        if (buf[i] == '\n') {
          ++count;
          keep = pos + i + 1;
        }
      }
      pos += got;
    }
  }
  if (keep < size) {
    if (::ftruncate(fd, keep) != 0) {
      ::close(fd);
      return Errno("ftruncate", path);
    }
  }
  return std::unique_ptr<Wal>(new Wal(path, fd, sync, count));
}

Status Wal::Append(std::string_view record) {
  if (record.find('\n') != std::string_view::npos) {
    return Status::InvalidArgument("WAL record contains a newline");
  }
  std::string line(record);
  line += '\n';
  size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        ::write(fd_, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A partial append leaves a torn tail; the next Open repairs it, and
      // this process must treat the record as not ingested.
      return Errno("write", path_);
    }
    written += static_cast<size_t>(n);
  }
  if (sync_ && ::fdatasync(fd_) != 0) return Errno("fdatasync", path_);
  ++count_;
  return Status::OK();
}

Status Wal::Replay(
    uint64_t after,
    const std::function<Status(uint64_t, std::string_view)>& callback) const {
  std::ifstream in(path_);
  if (!in) return Status::IoError("cannot reopen WAL '" + path_ + "'");
  std::string line;
  uint64_t ordinal = 0;
  while (ordinal < count_ && std::getline(in, line)) {
    ++ordinal;
    if (ordinal <= after) continue;
    CEP_RETURN_NOT_OK(callback(ordinal, line));
  }
  if (ordinal < count_ && after < count_) {
    return Status::DataLoss(
        StrFormat("WAL '%s' holds %llu records but %llu were appended",
                  path_.c_str(), static_cast<unsigned long long>(ordinal),
                  static_cast<unsigned long long>(count_)));
  }
  return Status::OK();
}

}  // namespace service
}  // namespace cep
