#include "service/quota.h"

#include <cmath>

#include "common/string_util.h"

namespace cep {
namespace service {

// Tolerance for weight-sum comparisons: lets 4 x 0.25 fill the budget
// exactly despite floating-point addition.
constexpr double kWeightEpsilon = 1e-9;

Result<double> QuotaAllocator::AdmitTenant(const std::string& tenant,
                                           double weight, size_t used_bytes) {
  const auto it = weights_.find(tenant);
  if (it != weights_.end()) return it->second;  // idempotent re-hello
  if (weight <= 0.0) weight = default_weight_;
  if (!(weight > 0.0) || weight > 1.0 + kWeightEpsilon) {
    return Status::InvalidArgument(
        StrFormat("tenant weight %g outside (0, 1]", weight));
  }
  if (reserved_ + weight > 1.0 + kWeightEpsilon) {
    return Status::OutOfRange(
        StrFormat("admission rejected: weight %g does not fit (%.3g of 1.0 "
                  "already reserved)",
                  weight, reserved_));
  }
  CEP_RETURN_NOT_OK(AdmitQuery(used_bytes));
  weights_[tenant] = weight;
  reserved_ += weight;
  return weight;
}

void QuotaAllocator::ReleaseTenant(const std::string& tenant) {
  const auto it = weights_.find(tenant);
  if (it == weights_.end()) return;
  reserved_ -= it->second;
  if (reserved_ < 0.0) reserved_ = 0.0;
  weights_.erase(it);
}

Status QuotaAllocator::AdmitQuery(size_t used_bytes) const {
  if (budget_bytes_ == 0) return Status::OK();
  const auto watermark =
      static_cast<size_t>(admission_ratio_ * static_cast<double>(budget_bytes_));
  if (used_bytes > watermark) {
    return Status::OutOfRange(
        StrFormat("admission rejected: run-set bytes %zu above watermark %zu "
                  "(%.2f of budget %zu)",
                  used_bytes, watermark, admission_ratio_, budget_bytes_));
  }
  return Status::OK();
}

size_t QuotaAllocator::QuotaBytes(double weight) const {
  if (budget_bytes_ == 0) return 0;
  return static_cast<size_t>(weight * static_cast<double>(budget_bytes_));
}

}  // namespace service
}  // namespace cep
