#ifndef CEPSHED_SERVICE_FRAMING_H_
#define CEPSHED_SERVICE_FRAMING_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace cep {
namespace service {

/// \brief Wire framing for the cepshed_server socket protocol
/// (docs/SERVICE.md).
///
/// Two message encodings share one connection and may be freely mixed:
///
///   text line     <payload bytes without 0xCE as first byte> '\n'
///                 (a trailing '\r' before the '\n' is stripped)
///   binary frame  0xCE u32le(payload length) <payload bytes>
///
/// Both decode to the same thing — one payload string, interpreted
/// identically by the session layer (control command, event CSV record, or
/// HTTP request line). The binary frame exists so payloads may contain
/// newlines and so bulk senders skip the per-byte newline scan.
inline constexpr uint8_t kFrameMagic = 0xCE;
/// Frame header size: magic byte + u32le payload length.
inline constexpr size_t kFrameHeaderBytes = 5;

/// Distinct protocol-error reasons. Carried in the Status message and
/// counted per reason by the server's quarantine machinery.
enum class ProtocolError : uint8_t {
  kOversizedLine,   ///< text line exceeded max_message_bytes before '\n'
  kOversizedFrame,  ///< binary frame declared a payload over the limit
};

const char* ProtocolErrorName(ProtocolError reason);

/// \brief Incremental decoder: Feed() raw socket bytes, then call Next()
/// until it reports that more input is needed.
///
/// Oversized input is quarantined, not fatal: an oversized text line is
/// discarded up to its terminating '\n' and an oversized binary frame is
/// discarded for its declared length, after which decoding resynchronises
/// on the next message. Each quarantined message surfaces as exactly one
/// OutOfRange status whose message names the ProtocolError reason.
class FrameReader {
 public:
  /// `max_message_bytes` bounds both text-line and frame payloads
  /// (0 disables the bound, which only tests should do).
  explicit FrameReader(size_t max_message_bytes = 1 << 20)
      : max_message_bytes_(max_message_bytes) {}

  /// Appends raw bytes from the socket.
  void Feed(const char* data, size_t size);

  /// Decode result: `have` false means the buffer holds no complete
  /// message yet (read more from the socket).
  struct Message {
    bool have = false;
    bool binary = false;   ///< arrived as a binary frame
    std::string payload;
  };

  /// Extracts the next complete message, or an OutOfRange protocol error
  /// for each quarantined oversized message. Call in a loop until
  /// `!result->have`.
  Result<Message> Next();

  /// Bytes currently buffered (bounded by max + frame header slack).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

  /// True while a partially received message sits in the buffer — used by
  /// the server's partial-frame timeout.
  bool mid_message() const { return buffered_bytes() > 0 || discard_ > 0; }

 private:
  void Compact();

  size_t max_message_bytes_;  // not const: FrameReader is reassignable
  std::string buffer_;
  size_t consumed_ = 0;   ///< prefix of buffer_ already handed out
  size_t discard_ = 0;    ///< bytes of an oversized frame left to skip
  bool discard_line_ = false;  ///< skipping an oversized line to its '\n'
};

/// Encodes `payload` as a binary frame (magic + u32le length + payload).
std::string EncodeFrame(std::string_view payload);

}  // namespace service
}  // namespace cep

#endif  // CEPSHED_SERVICE_FRAMING_H_
