#ifndef CEPSHED_SERVICE_WAL_H_
#define CEPSHED_SERVICE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace cep {
namespace service {

/// \brief Per-tenant write-ahead log of ingested events (docs/SERVICE.md).
///
/// One canonical CSV record per line, appended *before* the event is offered
/// to any engine: a record's 1-based ordinal in this file is the event's
/// sequence number, and snapshots record how many ordinals each engine has
/// consumed — together they give exactly-once replay after a crash.
///
/// Crash safety: Open() truncates a torn tail (bytes after the last
/// complete '\n' from a write cut short by SIGKILL or ENOSPC), so the log
/// always ends on a record boundary. With `sync` on, every append is
/// fdatasync'd before the event is processed; with it off, a crash may lose
/// the most recent records — but never reorder or corrupt earlier ones.
class Wal {
 public:
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens (creating if needed) the log at `path`, repairs a torn tail,
  /// and counts existing records.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           bool sync);

  /// Records appended so far (including those found at Open).
  uint64_t count() const { return count_; }

  /// Appends one record (must not contain '\n'); its ordinal is the new
  /// count(). Durable before return when sync mode is on.
  Status Append(std::string_view record);

  /// Replays records with ordinals in (`after`, count()] in order. The
  /// callback returns a Status; the first failure aborts the replay.
  Status Replay(
      uint64_t after,
      const std::function<Status(uint64_t ordinal, std::string_view record)>&
          callback) const;

  const std::string& path() const { return path_; }

 private:
  Wal(std::string path, int fd, bool sync, uint64_t count)
      : path_(std::move(path)), fd_(fd), sync_(sync), count_(count) {}

  const std::string path_;
  int fd_ = -1;
  const bool sync_ = false;
  uint64_t count_ = 0;
};

}  // namespace service
}  // namespace cep

#endif  // CEPSHED_SERVICE_WAL_H_
