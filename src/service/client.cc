#include "service/client.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "service/framing.h"

namespace cep {
namespace service {

namespace {

Status Errno(const char* op) {
  return Status::IoError(std::string(op) + ": " + std::strerror(errno));
}

}  // namespace

BlockingClient::~BlockingClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<BlockingClient>> BlockingClient::ConnectUnix(
    const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_UNIX)");
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return Status::InvalidArgument("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("connect '" + socket_path +
                           "': " + std::strerror(errno));
  }
  return std::unique_ptr<BlockingClient>(new BlockingClient(fd));
}

Result<std::unique_ptr<BlockingClient>> BlockingClient::ConnectTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("connect 127.0.0.1:" + std::to_string(port) +
                           ": " + std::strerror(errno));
  }
  return std::unique_ptr<BlockingClient>(new BlockingClient(fd));
}

Status BlockingClient::SendAll(const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a dead server yields EPIPE, not a process-killing
    // SIGPIPE — the chaos harness depends on clients surviving the SIGKILL.
    const ssize_t n =
        ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status BlockingClient::SendLine(std::string_view line) {
  if (line.find('\n') != std::string_view::npos) {
    return Status::InvalidArgument(
        "line contains '\\n'; use SendFrame for payloads with newlines");
  }
  std::string out(line);
  out += '\n';
  return SendAll(out.data(), out.size());
}

Status BlockingClient::SendFrame(std::string_view payload) {
  const std::string framed = EncodeFrame(payload);
  return SendAll(framed.data(), framed.size());
}

Result<std::string> BlockingClient::ReadLine() {
  for (;;) {
    const size_t nl = inbuf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = inbuf_.substr(0, nl);
      inbuf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {
      return Status::IoError("connection closed by server");
    }
    inbuf_.append(buf, static_cast<size_t>(n));
  }
}

Result<std::string> BlockingClient::Command(std::string_view line) {
  CEP_RETURN_NOT_OK(SendLine(line));
  CEP_ASSIGN_OR_RETURN(std::string reply, ReadLine());
  if (reply.rfind("!err", 0) == 0) {
    return Status::Internal("server rejected '" + std::string(line) +
                            "': " + reply);
  }
  return reply;
}

Result<std::string> BlockingClient::ReadBlock() {
  CEP_ASSIGN_OR_RETURN(std::string begin, ReadLine());
  if (begin.rfind("!begin", 0) != 0) {
    return Status::ParseError("expected !begin, got: " + begin);
  }
  std::string body;
  for (;;) {
    CEP_ASSIGN_OR_RETURN(std::string line, ReadLine());
    if (line == "!end") return body;
    body += line;
    body += '\n';
  }
}

}  // namespace service
}  // namespace cep
