#ifndef CEPSHED_SERVICE_TENANT_H_
#define CEPSHED_SERVICE_TENANT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/manager.h"
#include "common/result.h"
#include "common/status.h"
#include "engine/engine.h"
#include "event/schema.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "query/ast.h"
#include "service/wal.h"

namespace cep {
namespace service {

/// Parses a "k=v k=v ..." option spec (whitespace-separated, no quoting).
/// Duplicate keys are an error.
Result<std::map<std::string, std::string>> ParseKvSpec(std::string_view spec);

/// Builds the engine options for one tenant query from a parsed kv spec.
/// Service engines are forced onto the deterministic virtual-cost latency
/// clock with match collection on and engine-level checkpointing off (the
/// session checkpoints all of a tenant's engines atomically); `quota_bytes`
/// > 0 enables the degradation ladder with that byte budget.
///
/// Recognised keys: theta fraction cooldown maxruns selection threads
/// shards minparallel batch arena errorbudget (plus the shedder keys below,
/// which MakeShedderFromSpec consumes).
Result<EngineOptions> MakeEngineOptionsFromSpec(
    const std::map<std::string, std::string>& kv, double default_theta,
    size_t quota_bytes);

/// Builds the shedder for one tenant query. Keys: shedder (none|rbls|ttl|
/// ibls|sbls), seed, drop, hash (type:attr[,type:attr...]), bucket, slices,
/// wplus, wminus. Mirrors the cepshed_cli / stress_engine constructions so
/// a spec reproduces an in-process engine exactly.
Result<ShedderPtr> MakeShedderFromSpec(
    const std::map<std::string, std::string>& kv,
    const SchemaRegistry& registry);

/// One emitted match, formatted exactly as cepshed_cli --matches writes it
/// (complex event CSV when present, match.ToString otherwise).
std::string FormatMatch(const Match& match, const ParsedQuery& query);

/// \brief One tenant's whole world inside the server: its schema registry,
/// WAL, per-query engines, audit logs, atomic tenant snapshot, and drain
/// artifacts. See docs/SERVICE.md.
///
/// Exactly-once recovery contract: every parse-valid event is appended to
/// the WAL *before* any engine sees it; a tenant snapshot captures all of
/// the tenant's engines at one WAL offset; Recover() restores the newest
/// valid snapshot and replays only the WAL tail each engine has not yet
/// consumed. Because engines run the deterministic virtual-cost clock, the
/// recovered tenant's matches, metrics, and audit trail are byte-identical
/// to an uninterrupted run.
class TenantSession {
 public:
  struct Config {
    std::string tenant;
    std::string root;   ///< per-tenant state directory
    double theta = 0.0;   ///< default latency budget for this tenant's queries
    double weight = 0.0;  ///< quota weight actually reserved
    size_t quota_bytes = 0;  ///< degradation byte budget (0 = unlimited)
    size_t ckpt_keep = 3;
    size_t checkpoint_interval_events = 256;  ///< 0 = explicit/drain only
    bool wal_sync = false;
    size_t audit_capacity = 1 << 12;
  };

  /// Fields persisted in the tenant meta file that the server must know
  /// before it can build a Config (weight feeds the quota allocator).
  struct MetaHeader {
    double theta = 0.0;
    double weight = 0.0;
  };
  static Result<MetaHeader> ReadMetaHeader(const std::string& root);

  /// Fresh tenant: creates the state directory, an empty WAL, and the meta
  /// file.
  static Result<std::unique_ptr<TenantSession>> Create(Config config);

  /// Crash recovery: rebuilds schema and queries from the meta file,
  /// restores the newest valid tenant snapshot, and replays the WAL tail
  /// through each engine.
  static Result<std::unique_ptr<TenantSession>> Recover(Config config);

  ~TenantSession();
  TenantSession(const TenantSession&) = delete;
  TenantSession& operator=(const TenantSession&) = delete;

  /// `!schema` command body: either one builtin bundle name (cluster, bike,
  /// stock) or `<type> attr:type ...` registering one event type.
  /// Idempotent for a command already applied verbatim.
  Status ApplySchemaCommand(const std::vector<std::string>& args);

  /// Adds a query compiled from SASE `text` with options from `spec`
  /// ("k=v ..."). The engine is born at the current WAL offset: it only
  /// ever sees events ingested after this call. Idempotent when `name`
  /// exists with identical text+spec; AlreadyExists otherwise.
  Status AddQuery(const std::string& name, const std::string& spec,
                  const std::string& text);

  /// Removes a query and its engine (its past matches are gone with it).
  Status DropQuery(const std::string& name);

  /// Ingests one event CSV record: parse, WAL-append, offer to every
  /// engine, refresh the shared-budget pressure each engine feels. A parse
  /// failure quarantines the record (counted, session stays healthy) and
  /// returns the parse status so the caller can report it.
  Status IngestLine(std::string_view line);

  /// Writes a tenant snapshot now (synchronous) or hands it to the
  /// background writer.
  Status Checkpoint(bool synchronous);

  /// Terminal drain: Flush() every engine (emit runs parked at deferred
  /// final states), write a final synchronous snapshot, then write the
  /// artifact files into `out_dir`:
  ///   <tenant>--<query>.matches.csv
  ///   <tenant>--<query>.metrics.txt
  ///   <tenant>--<query>.audit.jsonl
  ///   <tenant>.metrics.prom
  Status Drain(const std::string& out_dir);

  /// Events ingested into the WAL so far — the resume point a client uses
  /// after reconnecting.
  uint64_t ingested() const { return wal_->count(); }

  /// Parse-quarantined records (never reached the WAL or any engine).
  uint64_t quarantined() const { return quarantined_; }
  const std::string& last_error() const { return last_error_; }

  /// Total run-set bytes across this tenant's engines (the quota signal).
  size_t TotalRunBytes() const;

  /// Per-engine metrics lines for the `!stats` reply.
  std::string StatsText() const;

  /// Exports every engine's metrics labelled {tenant, query}, plus
  /// tenant-level ingest/quarantine counters.
  void ExportMetrics(obs::Registry* registry) const;

  const std::string& tenant() const { return config_.tenant; }
  double theta() const { return config_.theta; }
  double weight() const { return config_.weight; }
  size_t num_queries() const { return queries_.size(); }
  std::vector<std::string> QueryNames() const;

  /// The engine behind `name` (tests, bench). Null when absent.
  Engine* FindEngine(const std::string& name);

 private:
  struct QueryState {
    std::string name;
    std::string spec;
    std::string text;
    uint64_t birth_offset = 0;  ///< WAL count when the query was added
    uint32_t obs_id = 0;        ///< stable audit/trace identity
    NfaPtr nfa;
    std::unique_ptr<obs::ShedAuditLog> audit;
    std::unique_ptr<Engine> engine;
  };

  explicit TenantSession(Config config);

  Status InitStorage();
  Status WriteMeta() const;
  Status LoadMeta();
  Status RestoreAndReplay();
  Result<std::unique_ptr<QueryState>> BuildQuery(const std::string& name,
                                                 const std::string& spec,
                                                 const std::string& text,
                                                 uint64_t birth_offset,
                                                 uint32_t obs_id);
  /// Re-points every engine's external-bytes signal at the rest of the
  /// tenant (total minus its own), so the shared quota squeezes all of a
  /// tenant's engines together.
  void RefreshSharedPressure();
  std::string CheckpointDirectory() const;

  Config config_;
  std::vector<std::string> schema_commands_;
  SchemaRegistry registry_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<ckpt::CheckpointManager> ckpt_;
  std::vector<std::unique_ptr<QueryState>> queries_;
  uint32_t next_obs_id_ = 0;
  uint64_t quarantined_ = 0;
  uint64_t events_since_ckpt_ = 0;
  std::string last_error_;
};

}  // namespace service
}  // namespace cep

#endif  // CEPSHED_SERVICE_TENANT_H_
