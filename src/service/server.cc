#include "service/server.h"

#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "ckpt/snapshot.h"
#include "common/string_util.h"
#include "shedding/registry.h"

namespace cep {
namespace service {

namespace {

int64_t MonotonicMillis() {
  struct timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError(std::string("fcntl O_NONBLOCK: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::istringstream in(text);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

Result<std::map<std::string, std::string>> TokensToKv(
    const std::vector<std::string>& tokens, size_t from) {
  std::string spec;
  for (size_t i = from; i < tokens.size(); ++i) {
    if (!spec.empty()) spec += ' ';
    spec += tokens[i];
  }
  return ParseKvSpec(spec);
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      quota_(options_.run_bytes_budget, options_.admission_ratio,
             options_.default_weight) {}

Server::~Server() {
  for (auto& conn : connections_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  if (unix_listen_fd_ >= 0) ::close(unix_listen_fd_);
  if (tcp_listen_fd_ >= 0) ::close(tcp_listen_fd_);
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
}

Result<std::unique_ptr<Server>> Server::Create(ServerOptions options) {
  if (options.root.empty()) {
    return Status::InvalidArgument("server needs a state --root directory");
  }
  if (options.socket_path.empty() && options.tcp_port == 0) {
    return Status::InvalidArgument(
        "server needs a --socket path or a --port to listen on");
  }
  if (options.out_dir.empty()) options.out_dir = options.root;
  std::unique_ptr<Server> server(new Server(std::move(options)));
  CEP_RETURN_NOT_OK(ckpt::EnsureDirectory(server->options_.root));
  CEP_RETURN_NOT_OK(server->Bind());
  CEP_RETURN_NOT_OK(server->RecoverTenants());
  return server;
}

Status Server::Bind() {
  if (::pipe(stop_pipe_) != 0) {
    return Status::IoError(std::string("pipe: ") + std::strerror(errno));
  }
  CEP_RETURN_NOT_OK(SetNonBlocking(stop_pipe_[0]));
  if (!options_.socket_path.empty()) {
    unix_listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_listen_fd_ < 0) {
      return Status::IoError(std::string("socket(AF_UNIX): ") +
                             std::strerror(errno));
    }
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("socket path too long: " +
                                     options_.socket_path);
    }
    std::strncpy(addr.sun_path, options_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.socket_path.c_str());  // stale socket from a crash
    if (::bind(unix_listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::IoError("bind '" + options_.socket_path +
                             "': " + std::strerror(errno));
    }
    if (::listen(unix_listen_fd_, 64) != 0) {
      return Status::IoError(std::string("listen: ") + std::strerror(errno));
    }
    CEP_RETURN_NOT_OK(SetNonBlocking(unix_listen_fd_));
  }
  if (options_.tcp_port != 0) {
    tcp_listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_listen_fd_ < 0) {
      return Status::IoError(std::string("socket(AF_INET): ") +
                             std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(tcp_listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::IoError(StrFormat("bind 127.0.0.1:%d: %s",
                                       options_.tcp_port,
                                       std::strerror(errno)));
    }
    if (::listen(tcp_listen_fd_, 64) != 0) {
      return Status::IoError(std::string("listen: ") + std::strerror(errno));
    }
    CEP_RETURN_NOT_OK(SetNonBlocking(tcp_listen_fd_));
  }
  return Status::OK();
}

Status Server::RecoverTenants() {
  DIR* dir = ::opendir(options_.root.c_str());
  if (dir == nullptr) {
    return Status::IoError("opendir '" + options_.root +
                           "': " + std::strerror(errno));
  }
  std::vector<std::string> tenants;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (!ckpt::IsSafePathComponent(name)) continue;
    // A tenant directory is one with a meta file; anything else under the
    // root (artifacts, stray files) is ignored.
    if (TenantSession::ReadMetaHeader(options_.root + "/" + name).ok()) {
      tenants.push_back(name);
    }
  }
  ::closedir(dir);
  std::sort(tenants.begin(), tenants.end());
  for (const std::string& tenant : tenants) {
    const std::string root = options_.root + "/" + tenant;
    CEP_ASSIGN_OR_RETURN(TenantSession::MetaHeader header,
                         TenantSession::ReadMetaHeader(root));
    CEP_ASSIGN_OR_RETURN(double weight,
                         quota_.AdmitTenant(tenant, header.weight, 0));
    TenantSession::Config config;
    config.tenant = tenant;
    config.root = root;
    config.theta = header.theta;
    config.weight = weight;
    config.quota_bytes = quota_.QuotaBytes(weight);
    config.ckpt_keep = options_.ckpt_keep;
    config.checkpoint_interval_events = options_.checkpoint_interval_events;
    config.wal_sync = options_.wal_sync;
    CEP_ASSIGN_OR_RETURN(auto session, TenantSession::Recover(config));
    sessions_[tenant] = std::move(session);
    queues_[tenant];
  }
  return Status::OK();
}

void Server::RequestStop() {
  const char byte = 's';
  // Best-effort: the loop also checks stop_requested_, this wakes poll().
  [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
}

TenantSession* Server::FindTenant(const std::string& tenant) {
  const auto it = sessions_.find(tenant);
  return it == sessions_.end() ? nullptr : it->second.get();
}

size_t Server::TotalRunBytes() const {
  size_t total = 0;
  for (const auto& [name, session] : sessions_) {
    total += session->TotalRunBytes();
  }
  return total;
}

void Server::ExportMetrics(obs::Registry* registry) const {
  for (const auto& [name, session] : sessions_) {
    session->ExportMetrics(registry);
  }
  registry
      ->GetCounter("cep_server_connections_total",
                   "Connections accepted since startup")
      ->Set(accepted_total_);
  registry
      ->GetCounter("cep_server_protocol_errors_total",
                   "Messages rejected as protocol errors")
      ->Set(protocol_errors_total_);
  registry
      ->GetCounter("cep_server_admission_rejected_total",
                   "Sessions/queries rejected by admission control")
      ->Set(admission_rejected_total_);
  registry
      ->GetCounter("cep_server_quarantined_connections_total",
                   "Connections closed for exhausting the protocol-error "
                   "budget")
      ->Set(quarantined_connections_total_);
  registry
      ->GetCounter("cep_server_idle_closed_total",
                   "Connections closed by the idle/partial-frame timeout")
      ->Set(idle_closed_total_);
  size_t queued = 0;
  for (const auto& [name, queue] : queues_) queued += queue.size();
  registry
      ->GetGauge("cep_server_queued_events", "Events waiting in ingest queues")
      ->Set(static_cast<double>(queued));
  registry
      ->GetGauge("cep_server_run_bytes_total",
                 "Run-set bytes across all tenants")
      ->Set(static_cast<double>(TotalRunBytes()));
}

Status Server::Run() {
  while (!stop_requested_) {
    std::vector<struct pollfd> fds;
    // Slot 0: self-pipe. Then listeners, then connections (index mapping
    // rebuilt every turn — connections close and open freely).
    fds.push_back({stop_pipe_[0], POLLIN, 0});
    const size_t unix_slot = fds.size();
    if (unix_listen_fd_ >= 0) fds.push_back({unix_listen_fd_, POLLIN, 0});
    const size_t tcp_slot = fds.size();
    if (tcp_listen_fd_ >= 0) fds.push_back({tcp_listen_fd_, POLLIN, 0});
    const size_t conn_base = fds.size();
    for (const auto& conn : connections_) {
      short events = 0;
      // Backpressure: a connection bound to a tenant whose queue is full
      // is simply not read from — the kernel socket buffer fills and the
      // client's write blocks, without costing any other tenant anything.
      const bool queue_full =
          conn->session != nullptr &&
          queues_[conn->session->tenant()].size() >= options_.queue_events;
      if (!queue_full && !conn->close_after_write) events |= POLLIN;
      if (!conn->outbuf.empty()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
    }

    const bool work_pending = [&] {
      for (const auto& [name, queue] : queues_) {
        if (!queue.empty()) return true;
      }
      return false;
    }();
    const int timeout_ms =
        work_pending ? 0 : (options_.idle_timeout_ms > 0 ? 50 : 200);
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      return Status::IoError(std::string("poll: ") + std::strerror(errno));
    }

    if (fds[0].revents & POLLIN) {
      char buf[64];
      while (::read(stop_pipe_[0], buf, sizeof(buf)) > 0) {
      }
      stop_requested_ = true;
    }
    if (unix_listen_fd_ >= 0 && (fds[unix_slot].revents & POLLIN)) {
      AcceptPending(unix_listen_fd_);
    }
    if (tcp_listen_fd_ >= 0 && (fds[tcp_slot].revents & POLLIN)) {
      AcceptPending(tcp_listen_fd_);
    }
    const int64_t now = MonotonicMillis();
    for (size_t i = 0; i < connections_.size() && conn_base + i < fds.size();
         ++i) {
      Connection* conn = connections_[i].get();
      const short revents = fds[conn_base + i].revents;
      if (revents & POLLOUT) FlushOut(conn);
      if (revents & (POLLIN | POLLHUP | POLLERR)) ReadFrom(conn);
      if (revents != 0) conn->last_activity_ms = now;
    }
    PumpQueues(options_.pump_quantum);
    // Reap: closed by peer (fd -1), finished writes on closing conns, and
    // idle/partial-frame timeouts.
    for (size_t i = connections_.size(); i > 0; --i) {
      Connection* conn = connections_[i - 1].get();
      if (conn->fd < 0) {
        CloseConnection(i - 1);
        continue;
      }
      if (conn->close_after_write && conn->outbuf.empty()) {
        CloseConnection(i - 1);
        continue;
      }
      if (options_.idle_timeout_ms > 0 &&
          now - conn->last_activity_ms > options_.idle_timeout_ms) {
        ++idle_closed_total_;
        if (conn->reader.mid_message()) {
          // A half-delivered frame that stalls is indistinguishable from a
          // wedged or malicious client: quarantine, do not wait forever.
          ++protocol_errors_total_;
          ++quarantined_connections_total_;
        }
        CloseConnection(i - 1);
      }
    }
  }
  return DrainAll();
}

Status Server::DrainAll() {
  // Stop accepting (listeners are simply no longer polled), finish every
  // queued event, then flush, checkpoint, and export each tenant.
  PumpQueues(0);  // 0 = unbounded quantum
  Status first;
  for (auto& [name, session] : sessions_) {
    const Status st = session->Drain(options_.out_dir);
    if (!st.ok() && first.ok()) first = st;
  }
  obs::Registry registry;
  ExportMetrics(&registry);
  const Status st = ckpt::WriteFileAtomic(
      options_.out_dir + "/server.metrics.prom", registry.ToPrometheusText());
  if (!st.ok() && first.ok()) first = st;
  for (size_t i = connections_.size(); i > 0; --i) CloseConnection(i - 1);
  return first;
}

void Server::AcceptPending(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error — next poll retries
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->reader = FrameReader(options_.max_message_bytes);
    conn->last_activity_ms = MonotonicMillis();
    connections_.push_back(std::move(conn));
    ++accepted_total_;
  }
}

void Server::ReadFrom(Connection* conn) {
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->reader.Feed(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EOF or hard error: mark for reaping. Anything already buffered is
    // still dispatched below (a client may send its last events and close).
    ::close(conn->fd);
    conn->fd = -1;
    break;
  }
  for (;;) {
    auto next = conn->reader.Next();
    if (!next.ok()) {
      ProtocolError(conn, next.status());
      if (conn->fd < 0 || conn->close_after_write) return;
      continue;
    }
    if (!next.ValueOrDie().have) break;
    Dispatch(conn, next.MoveValueUnsafe());
    if (conn->fd < 0) return;
  }
}

void Server::Dispatch(Connection* conn, FrameReader::Message message) {
  if (conn->http) return;  // draining header lines of an HTTP request
  const std::string& payload = message.payload;
  if (payload.empty()) return;
  if (payload[0] == '!') {
    HandleControl(conn, payload);
    return;
  }
  if (!message.binary && payload.rfind("GET ", 0) == 0) {
    HandleHttp(conn, payload);
    return;
  }
  EnqueueEvent(conn, std::move(message.payload));
}

void Server::EnqueueEvent(Connection* conn, std::string line) {
  if (conn->session == nullptr) {
    ProtocolError(conn, Status::InvalidArgument(
                            "event before !hello — bind a tenant first"));
    return;
  }
  queues_[conn->session->tenant()].push_back(std::move(line));
}

void Server::PumpQueues(size_t per_tenant_quantum) {
  for (auto& [tenant, queue] : queues_) {
    PumpTenant(tenant, per_tenant_quantum);
  }
}

void Server::PumpTenant(const std::string& tenant, size_t quantum) {
  const auto session_it = sessions_.find(tenant);
  const auto queue_it = queues_.find(tenant);
  if (session_it == sessions_.end() || queue_it == queues_.end()) return;
  TenantSession* session = session_it->second.get();
  std::deque<std::string>& queue = queue_it->second;
  size_t processed = 0;
  while (!queue.empty() && (quantum == 0 || processed < quantum)) {
    const std::string line = std::move(queue.front());
    queue.pop_front();
    ++processed;
    // Parse quarantine is counted inside the session; engine-level errors
    // are quarantined by the per-engine error budget. Either way the pump
    // keeps going — one bad record must not wedge the tenant.
    (void)session->IngestLine(line);
  }
}

void Server::Reply(Connection* conn, const std::string& line) {
  conn->outbuf += line;
  conn->outbuf += '\n';
  FlushOut(conn);
}

void Server::ProtocolError(Connection* conn, const Status& status) {
  ++protocol_errors_total_;
  ++conn->protocol_errors;
  Reply(conn, "!err " + status.ToString());
  if (conn->protocol_errors >= options_.protocol_error_budget) {
    ++quarantined_connections_total_;
    conn->close_after_write = true;
  }
}

void Server::FlushOut(Connection* conn) {
  while (!conn->outbuf.empty() && conn->fd >= 0) {
    const ssize_t n =
        ::write(conn->fd, conn->outbuf.data(), conn->outbuf.size());
    if (n > 0) {
      conn->outbuf.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    ::close(conn->fd);  // peer is gone; reaped next turn
    conn->fd = -1;
    return;
  }
}

void Server::CloseConnection(size_t index) {
  Connection* conn = connections_[index].get();
  if (conn->fd >= 0) ::close(conn->fd);
  connections_.erase(connections_.begin() +
                     static_cast<ptrdiff_t>(index));
}

Result<TenantSession*> Server::HandleHello(
    const std::string& tenant, const std::map<std::string, std::string>& kv) {
  if (!ckpt::IsSafePathComponent(tenant)) {
    return Status::InvalidArgument("unsafe tenant name '" + tenant + "'");
  }
  const auto existing = sessions_.find(tenant);
  if (existing != sessions_.end()) return existing->second.get();
  double weight = 0.0;
  const auto weight_it = kv.find("weight");
  if (weight_it != kv.end()) {
    CEP_ASSIGN_OR_RETURN(weight, ParseDouble(weight_it->second));
  }
  double theta = options_.default_theta;
  const auto theta_it = kv.find("theta");
  if (theta_it != kv.end()) {
    CEP_ASSIGN_OR_RETURN(theta, ParseDouble(theta_it->second));
  }
  auto admitted = quota_.AdmitTenant(tenant, weight, TotalRunBytes());
  if (!admitted.ok()) {
    ++admission_rejected_total_;
    return admitted.status();
  }
  TenantSession::Config config;
  config.tenant = tenant;
  config.root = options_.root + "/" + tenant;
  config.theta = theta;
  config.weight = admitted.ValueOrDie();
  config.quota_bytes = quota_.QuotaBytes(admitted.ValueOrDie());
  config.ckpt_keep = options_.ckpt_keep;
  config.checkpoint_interval_events = options_.checkpoint_interval_events;
  config.wal_sync = options_.wal_sync;
  auto session = TenantSession::Create(config);
  if (!session.ok()) {
    quota_.ReleaseTenant(tenant);
    return session.status();
  }
  TenantSession* raw = session.ValueOrDie().get();
  sessions_[tenant] = session.MoveValueUnsafe();
  queues_[tenant];
  return raw;
}

void Server::HandleControl(Connection* conn, const std::string& payload) {
  const std::vector<std::string> tokens = Tokenize(payload);
  if (tokens.empty()) return;
  const std::string& command = tokens[0];
  // Control commands observe (and may change) the tenant's WAL offset, so
  // any queued events are processed first — a `!query` lands at exactly
  // the offset the client has streamed to, and `!drain` means drained.
  if (conn->session != nullptr) {
    PumpTenant(conn->session->tenant(), 0);
  }
  if (command == "!hello") {
    if (tokens.size() < 2) {
      ProtocolError(conn,
                    Status::InvalidArgument("!hello needs a tenant name"));
      return;
    }
    auto kv = TokensToKv(tokens, 2);
    if (!kv.ok()) {
      ProtocolError(conn, kv.status());
      return;
    }
    auto session = HandleHello(tokens[1], kv.ValueOrDie());
    if (!session.ok()) {
      Reply(conn, "!err admission " + session.status().ToString());
      return;
    }
    conn->session = session.ValueOrDie();
    // Advertise the registered shedding strategies so clients can build
    // `!query ... shedder=<name>` specs without guessing.
    std::string strategies;
    for (const ShedderStrategyInfo& info :
         ShedderRegistry::ListStrategies()) {
      if (!strategies.empty()) strategies += ',';
      strategies += info.name;
    }
    Reply(conn, StrFormat("!ok hello tenant=%s ingested=%llu strategies=%s",
                          tokens[1].c_str(),
                          static_cast<unsigned long long>(
                              conn->session->ingested()),
                          strategies.c_str()));
    return;
  }
  if (command == "!quit") {
    Reply(conn, "!ok bye");
    conn->close_after_write = true;
    return;
  }
  if (command == "!metrics") {
    obs::Registry registry;
    if (conn->session != nullptr) {
      conn->session->ExportMetrics(&registry);
    } else {
      ExportMetrics(&registry);
    }
    Reply(conn, "!begin metrics");
    std::string text = registry.ToPrometheusText();
    if (!text.empty() && text.back() == '\n') text.pop_back();
    Reply(conn, text);
    Reply(conn, "!end");
    return;
  }
  if (conn->session == nullptr) {
    ProtocolError(conn, Status::InvalidArgument(
                            command + " requires a bound tenant (!hello)"));
    return;
  }
  TenantSession* session = conn->session;
  if (command == "!schema") {
    const std::vector<std::string> args(tokens.begin() + 1, tokens.end());
    const Status st = session->ApplySchemaCommand(args);
    Reply(conn, st.ok() ? "!ok schema" : "!err " + st.ToString());
    return;
  }
  if (command == "!query") {
    const size_t sep = payload.find(" :: ");
    if (sep == std::string::npos) {
      ProtocolError(conn, Status::InvalidArgument(
                              "!query needs ' :: ' before the query text"));
      return;
    }
    const std::vector<std::string> head =
        Tokenize(payload.substr(0, sep));
    if (head.size() < 2) {
      ProtocolError(conn,
                    Status::InvalidArgument("!query needs a query name"));
      return;
    }
    std::string spec;
    for (size_t i = 2; i < head.size(); ++i) {
      if (!spec.empty()) spec += ' ';
      spec += head[i];
    }
    const Status admit = quota_.AdmitQuery(TotalRunBytes());
    if (!admit.ok()) {
      ++admission_rejected_total_;
      Reply(conn, "!err admission " + admit.ToString());
      return;
    }
    const Status st =
        session->AddQuery(head[1], spec, payload.substr(sep + 4));
    Reply(conn, st.ok() ? "!ok query name=" + head[1]
                        : "!err " + st.ToString());
    return;
  }
  if (command == "!drop") {
    if (tokens.size() != 2) {
      ProtocolError(conn, Status::InvalidArgument("!drop needs a query name"));
      return;
    }
    const Status st = session->DropQuery(tokens[1]);
    Reply(conn, st.ok() ? "!ok drop name=" + tokens[1]
                        : "!err " + st.ToString());
    return;
  }
  if (command == "!checkpoint") {
    const Status st = session->Checkpoint(/*synchronous=*/true);
    Reply(conn, st.ok()
                    ? StrFormat("!ok checkpoint offset=%llu",
                                static_cast<unsigned long long>(
                                    session->ingested()))
                    : "!err " + st.ToString());
    return;
  }
  if (command == "!stats") {
    Reply(conn, "!begin stats");
    std::string text = session->StatsText();
    if (!text.empty() && text.back() == '\n') text.pop_back();
    Reply(conn, text);
    Reply(conn, "!end");
    return;
  }
  if (command == "!drain") {
    // The pump above already emptied this tenant's queue.
    Reply(conn, StrFormat("!ok drain ingested=%llu quarantined=%llu",
                          static_cast<unsigned long long>(session->ingested()),
                          static_cast<unsigned long long>(
                              session->quarantined())));
    return;
  }
  ProtocolError(conn, Status::InvalidArgument("unknown control command '" +
                                              command + "'"));
}

void Server::HandleHttp(Connection* conn, const std::string& request_line) {
  conn->http = true;
  conn->close_after_write = true;
  std::string body;
  std::string status_line = "HTTP/1.0 200 OK";
  if (request_line.rfind("GET /metrics", 0) == 0) {
    obs::Registry registry;
    ExportMetrics(&registry);
    body = registry.ToPrometheusText();
  } else {
    status_line = "HTTP/1.0 404 Not Found";
    body = "only /metrics lives here\n";
  }
  conn->outbuf += status_line;
  conn->outbuf +=
      "\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n";
  conn->outbuf += body;
  FlushOut(conn);
}

}  // namespace service
}  // namespace cep
