#ifndef CEPSHED_COMMON_STATUS_H_
#define CEPSHED_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace cep {

/// \brief Status codes used across the library.
///
/// Mirrors the Arrow/RocksDB convention: library code never throws; fallible
/// operations return a Status (or a Result<T>, see result.h).
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kParseError = 2,
  kTypeError = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kOutOfRange = 6,
  kIoError = 7,
  kNotImplemented = 8,
  kInternal = 9,
  kDataLoss = 10,
};

/// \brief Returns a human-readable name for a status code ("OK", "ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// The OK state carries no allocation; error states allocate a small record.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// Error message; empty for OK.
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Prefixes the error message with `context` (no-op on OK statuses).
  Status WithContext(const std::string& context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<Rep> rep_;  // nullptr <=> OK
};

}  // namespace cep

/// Propagates a non-OK Status from the current function.
#define CEP_RETURN_NOT_OK(expr)                   \
  do {                                            \
    ::cep::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                    \
  } while (false)

#endif  // CEPSHED_COMMON_STATUS_H_
