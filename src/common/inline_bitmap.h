#ifndef CEPSHED_COMMON_INLINE_BITMAP_H_
#define CEPSHED_COMMON_INLINE_BITMAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace cep {

/// \brief Dynamically sized bitmap with inline storage for small sets.
///
/// The run store keeps its live and victim masks in one of these per column:
/// up to kInlineWords*64 bits live directly in the object (no allocation for
/// small run sets), larger sets spill to a heap word array. Bits beyond
/// bit_count() are kept zero so popcounts and word scans need no tail masks.
class InlineBitmap {
 public:
  InlineBitmap() { inline_words_[0] = inline_words_[1] = 0; }

  InlineBitmap(const InlineBitmap&) = delete;
  InlineBitmap& operator=(const InlineBitmap&) = delete;

  /// Number of addressable bits.
  size_t bit_count() const { return bits_; }

  /// Grows or shrinks to `bits`. New bits are zero; on shrink the dropped
  /// tail is zeroed so stale bits cannot resurface on a later grow.
  void Resize(size_t bits) {
    const size_t words = WordsFor(bits);
    if (words > word_capacity_) {
      heap_.resize(words, 0);
      if (word_capacity_ == kInlineWords) {
        std::memcpy(heap_.data(), inline_words_,
                    kInlineWords * sizeof(uint64_t));
      }
      word_capacity_ = heap_.size();
    }
    if (bits < bits_) {
      uint64_t* w = words_data();
      for (size_t i = words; i < WordsFor(bits_); ++i) w[i] = 0;
      if (bits % 64 != 0 && words > 0) {
        w[words - 1] &= (uint64_t{1} << (bits % 64)) - 1;
      }
    }
    bits_ = bits;
  }

  bool Get(size_t i) const {
    assert(i < bits_);
    return (words_data()[i / 64] >> (i % 64)) & 1;
  }

  void Set(size_t i) {
    assert(i < bits_);
    words_data()[i / 64] |= uint64_t{1} << (i % 64);
  }

  void Clear(size_t i) {
    assert(i < bits_);
    words_data()[i / 64] &= ~(uint64_t{1} << (i % 64));
  }

  /// Zeroes every bit (size unchanged).
  void ClearAll() {
    uint64_t* w = words_data();
    for (size_t i = 0; i < WordsFor(bits_); ++i) w[i] = 0;
  }

  /// Number of set bits.
  size_t CountSet() const {
    size_t n = 0;
    const uint64_t* w = words_data();
    for (size_t i = 0; i < WordsFor(bits_); ++i) {
      n += static_cast<size_t>(__builtin_popcountll(w[i]));
    }
    return n;
  }

  /// Raw words (ceil(bit_count()/64) of them); tail bits are zero.
  const uint64_t* words() const { return words_data(); }

 private:
  static constexpr size_t kInlineWords = 2;

  static size_t WordsFor(size_t bits) { return (bits + 63) / 64; }

  uint64_t* words_data() {
    return word_capacity_ == kInlineWords ? inline_words_ : heap_.data();
  }
  const uint64_t* words_data() const {
    return word_capacity_ == kInlineWords ? inline_words_ : heap_.data();
  }

  uint64_t inline_words_[kInlineWords];
  std::vector<uint64_t> heap_;
  size_t word_capacity_ = kInlineWords;
  size_t bits_ = 0;
};

}  // namespace cep

#endif  // CEPSHED_COMMON_INLINE_BITMAP_H_
