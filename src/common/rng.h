#ifndef CEPSHED_COMMON_RNG_H_
#define CEPSHED_COMMON_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cep {

/// \brief Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in the library takes an explicit seed so that
/// experiments are reproducible bit-for-bit. Not cryptographically secure.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound); bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (p clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double NextExponential(double rate);

  /// Gaussian via Box–Muller.
  double NextGaussian(double mean, double stddev);

  /// Poisson-distributed count (Knuth for small mean, normal approx. beyond).
  uint64_t NextPoisson(double mean);

  /// Zipf-distributed rank in [0, n) with exponent s (s >= 0; 0 = uniform).
  /// Uses a precomputed CDF per (n, s) pair — cheap for repeated draws.
  uint64_t NextZipf(uint64_t n, double s);

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// Raw xoshiro256** state, for checkpointing. The zipf table is a pure
  /// cache keyed by (n, s) and rebuilds on demand, so it is not part of the
  /// durable state.
  std::array<uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  uint64_t s_[4];
  // Cache for NextZipf.
  uint64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace cep

#endif  // CEPSHED_COMMON_RNG_H_
