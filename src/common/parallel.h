#ifndef CEPSHED_COMMON_PARALLEL_H_
#define CEPSHED_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cep {

/// \brief Persistent worker pool for data-parallel loops.
///
/// One pool hosts `num_threads - 1` worker threads; the thread calling
/// ParallelFor participates as the remaining lane, so a pool of size N runs
/// loops N-wide without handing its caller to the scheduler. Jobs are
/// index-claimed: workers pull loop indices one at a time, which balances
/// shards of uneven cost (run sharding produces such shards whenever the
/// run set is skewed toward one NFA state).
///
/// Nested use is safe by construction: a ParallelFor issued from inside a
/// worker lane (e.g. an Engine sharding its run set while MultiEngine is
/// already fanning engines out across the pool) executes inline on the
/// calling lane instead of deadlocking on its own pool.
///
/// All job state is mutex-guarded; the pool is intentionally boring so that
/// it is obviously correct under ThreadSanitizer. Loop bodies must not
/// throw; they communicate failure through their captured state (the engine
/// records per-run Status objects in its shard scratch).
class ThreadPool {
 public:
  /// A pool of total width `num_threads` (caller lane included); values
  /// 0 and 1 create a pool with no workers, on which ParallelFor runs the
  /// loop inline.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallel width, caller lane included.
  size_t num_threads() const { return workers_.size() + 1; }

  /// Runs `fn(i)` for every i in [0, n), potentially in parallel, and
  /// returns once all n calls completed. The calling thread participates.
  /// Calls issued from inside a pool lane run the loop inline.
  template <typename Fn>
  void ParallelFor(size_t n, Fn&& fn) {
    auto thunk = [](void* ctx, size_t i) {
      (*static_cast<std::remove_reference_t<Fn>*>(ctx))(i);
    };
    ParallelForRaw(n, thunk,
                   const_cast<void*>(
                       static_cast<const void*>(std::addressof(fn))));
  }

  /// True when the current thread is executing a loop body on some pool
  /// (used to run nested loops inline).
  static bool InParallelRegion();

 private:
  void ParallelForRaw(size_t n, void (*fn)(void*, size_t), void* ctx);
  void WorkerLoop();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers: a job has items to claim
  std::condition_variable done_cv_;   // submitter: job drained / pool free
  bool stop_ = false;
  bool job_active_ = false;
  void (*job_fn_)(void*, size_t) = nullptr;
  void* job_ctx_ = nullptr;
  size_t job_n_ = 0;
  size_t job_next_ = 0;     // next unclaimed index
  size_t job_pending_ = 0;  // claimed-or-unclaimed items not yet finished
};

}  // namespace cep

#endif  // CEPSHED_COMMON_PARALLEL_H_
