#include "common/status.h"

namespace cep {

namespace {
const std::string& EmptyString() {
  static const std::string* const kEmpty = new std::string();
  return *kEmpty;
}
}  // namespace

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_ != nullptr) rep_ = std::make_unique<Rep>(*other.rep_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return rep_ ? rep_->message : EmptyString();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += rep_->message;
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

}  // namespace cep
