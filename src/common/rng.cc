#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace cep {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // SplitMix64 seeding, as recommended by the xoshiro authors.
  uint64_t z = seed;
  for (auto& s : s_) {
    z += 0x9e3779b97f4a7c15ULL;
    s = Mix64(z);
  }
  // Avoid the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless method would be overkill; rejection sampling
  // keeps the distribution exactly uniform.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double rate) {
  // Inverse CDF; guard against log(0).
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

double Rng::NextGaussian(double mean, double stddev) {
  double u1 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = NextDouble();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

uint64_t Rng::NextPoisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation for large means.
  const double g = NextGaussian(mean, std::sqrt(mean));
  return g <= 0.0 ? 0 : static_cast<uint64_t>(std::llround(g));
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  if (n <= 1) return 0;
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double sum = 0.0;
    for (uint64_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
      zipf_cdf_[k] = sum;
    }
    for (auto& c : zipf_cdf_) c /= sum;
  }
  const double u = NextDouble();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<uint64_t>(it - zipf_cdf_.begin());
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = i;
  for (size_t i = n; i > 1; --i) {
    std::swap(out[i - 1], out[NextBounded(i)]);
  }
  return out;
}

}  // namespace cep
