#include "common/value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/hash.h"

namespace cep {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

Result<bool> Value::GetBool() const {
  if (!is_bool()) {
    return Status::TypeError(std::string("expected bool, got ") +
                             ValueTypeName(type()));
  }
  return bool_value();
}

Result<int64_t> Value::GetInt() const {
  if (!is_int()) {
    return Status::TypeError(std::string("expected int, got ") +
                             ValueTypeName(type()));
  }
  return int_value();
}

Result<double> Value::GetDouble() const {
  if (!is_numeric()) {
    return Status::TypeError(std::string("expected numeric, got ") +
                             ValueTypeName(type()));
  }
  return AsDouble();
}

Result<std::string> Value::GetString() const {
  if (!is_string()) {
    return Status::TypeError(std::string("expected string, got ") +
                             ValueTypeName(type()));
  }
  return string_value();
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return bool_value() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(int_value());
    case ValueType::kDouble: {
      // Shortest rendering that parses back to the exact same double: "%.6g"
      // alone silently loses precision, which broke the query-text round-trip
      // (ParseQuery -> ToString -> ParseQuery) and CSV re-ingestion fidelity.
      char buf[40];
      const double d = double_value();
      for (int precision = 6; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, d);
        if (std::strtod(buf, nullptr) == d) break;
      }
      return buf;
    }
    case ValueType::kString:
      return string_value();
  }
  return "?";
}

uint64_t Value::Hash() const {
  const uint64_t type_seed = Mix64(static_cast<uint64_t>(type()) + 0x9e77);
  switch (type()) {
    case ValueType::kNull:
      return type_seed;
    case ValueType::kBool:
      return HashCombine(type_seed, bool_value() ? 1 : 0);
    case ValueType::kInt:
      return HashCombine(type_seed, static_cast<uint64_t>(int_value()));
    case ValueType::kDouble: {
      // Normalise -0.0 to 0.0 so equal doubles hash equally.
      double d = double_value();
      if (d == 0.0) d = 0.0;
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return HashCombine(type_seed, bits);
    }
    case ValueType::kString:
      return HashCombine(type_seed, HashBytes(string_value().data(),
                                              string_value().size()));
  }
  return 0;
}

bool operator==(const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric()) {
    if (a.is_int() && b.is_int()) return a.int_value() == b.int_value();
    return a.AsDouble() == b.AsDouble();
  }
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kBool:
      return a.bool_value() == b.bool_value();
    case ValueType::kString:
      return a.string_value() == b.string_value();
    default:
      return false;  // unreachable: numerics handled above
  }
}

Result<int> Value::Compare(const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric()) {
    if (a.is_int() && b.is_int()) {
      const int64_t x = a.int_value(), y = b.int_value();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    const double x = a.AsDouble(), y = b.AsDouble();
    if (std::isnan(x) || std::isnan(y)) {
      return Status::TypeError("cannot order NaN");
    }
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.is_string() && b.is_string()) {
    const int c = a.string_value().compare(b.string_value());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a.is_bool() && b.is_bool()) {
    return static_cast<int>(a.bool_value()) - static_cast<int>(b.bool_value());
  }
  return Status::TypeError(std::string("cannot compare ") +
                           ValueTypeName(a.type()) + " with " +
                           ValueTypeName(b.type()));
}

}  // namespace cep
