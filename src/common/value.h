#ifndef CEPSHED_COMMON_VALUE_H_
#define CEPSHED_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/status.h"

namespace cep {

/// \brief Runtime type tag of a Value.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kDouble = 3,
  kString = 4,
};

const char* ValueTypeName(ValueType type);

/// \brief Tagged attribute value: null, bool, int64, double, or string.
///
/// Values are small, copyable, and totally ordered within a type. Numeric
/// comparisons between kInt and kDouble coerce to double (SQL-style).
class Value {
 public:
  /// Constructs a null value.
  Value() : repr_(std::monostate{}) {}
  Value(bool v) : repr_(v) {}                    // NOLINT(google-explicit-constructor)
  Value(int64_t v) : repr_(v) {}                 // NOLINT
  Value(int v) : repr_(static_cast<int64_t>(v)) {}  // NOLINT
  Value(double v) : repr_(v) {}                  // NOLINT
  Value(std::string v) : repr_(std::move(v)) {}  // NOLINT
  Value(const char* v) : repr_(std::string(v)) {}  // NOLINT

  static Value Null() { return Value(); }

  ValueType type() const { return static_cast<ValueType>(repr_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_numeric() const { return is_int() || is_double(); }

  /// Unchecked accessors; call only after checking the type.
  bool bool_value() const { return std::get<bool>(repr_); }
  int64_t int_value() const { return std::get<int64_t>(repr_); }
  double double_value() const { return std::get<double>(repr_); }
  const std::string& string_value() const { return std::get<std::string>(repr_); }

  /// Numeric value as double; requires is_numeric().
  double AsDouble() const {
    return is_int() ? static_cast<double>(int_value()) : double_value();
  }

  /// Checked accessors returning TypeError on mismatch.
  Result<bool> GetBool() const;
  Result<int64_t> GetInt() const;
  Result<double> GetDouble() const;  ///< Accepts kInt or kDouble.
  Result<std::string> GetString() const;

  /// Renders the value for diagnostics and CSV output.
  std::string ToString() const;

  /// Stable 64-bit hash (type-aware; kInt 3 and kDouble 3.0 hash differently).
  uint64_t Hash() const;

  /// Equality: same type (modulo int/double numeric coercion) and same value.
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Three-way comparison for order predicates. Returns TypeError for
  /// incomparable types (e.g. string vs int, or any null operand).
  static Result<int> Compare(const Value& a, const Value& b);

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> repr_;
};

}  // namespace cep

#endif  // CEPSHED_COMMON_VALUE_H_
