#ifndef CEPSHED_COMMON_HASH_H_
#define CEPSHED_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cep {

/// \brief 64-bit finaliser (SplitMix64 / MurmurHash3 fmix64 style).
///
/// Bijective; used to decorrelate structured keys before table indexing.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// \brief Combines a seed with another hash (boost::hash_combine, 64-bit).
inline uint64_t HashCombine(uint64_t seed, uint64_t h) {
  return seed ^ (Mix64(h) + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// \brief FNV-1a over raw bytes.
uint64_t HashBytes(const void* data, size_t size);

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

}  // namespace cep

#endif  // CEPSHED_COMMON_HASH_H_
