#ifndef CEPSHED_COMMON_STRING_UTIL_H_
#define CEPSHED_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace cep {

/// Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view input, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Strict integer / double parsing (whole string must be consumed).
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins items with a separator.
std::string JoinStrings(const std::vector<std::string>& items,
                        std::string_view sep);

}  // namespace cep

#endif  // CEPSHED_COMMON_STRING_UTIL_H_
