#ifndef CEPSHED_COMMON_TIME_H_
#define CEPSHED_COMMON_TIME_H_

#include <cstdint>

namespace cep {

/// Event time, in microseconds since an arbitrary stream epoch.
///
/// The Google cluster traces use microsecond timestamps; we adopt the same
/// resolution for all workloads.
using Timestamp = int64_t;

/// A span of event time, in microseconds.
using Duration = int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;
constexpr Duration kMinute = 60 * kSecond;
constexpr Duration kHour = 60 * kMinute;

constexpr Timestamp kMaxTimestamp = INT64_MAX;

}  // namespace cep

#endif  // CEPSHED_COMMON_TIME_H_
