#include "common/parallel.h"

namespace cep {

namespace {
thread_local bool t_in_parallel_region = false;
}  // namespace

bool ThreadPool::InParallelRegion() { return t_in_parallel_region; }

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || job_next_ < job_n_; });
    if (stop_) return;
    while (job_next_ < job_n_) {
      const size_t index = job_next_++;
      auto* fn = job_fn_;
      void* ctx = job_ctx_;
      lock.unlock();
      t_in_parallel_region = true;
      fn(ctx, index);
      t_in_parallel_region = false;
      lock.lock();
      if (--job_pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelForRaw(size_t n, void (*fn)(void*, size_t),
                                void* ctx) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || t_in_parallel_region) {
    for (size_t i = 0; i < n; ++i) fn(ctx, i);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  // One job at a time; a second submitter (two app threads sharing a pool)
  // queues here until the pool is free.
  done_cv_.wait(lock, [this] { return !job_active_; });
  job_active_ = true;
  job_fn_ = fn;
  job_ctx_ = ctx;
  job_n_ = n;
  job_next_ = 0;
  job_pending_ = n;
  work_cv_.notify_all();
  // The caller participates: claim indices like any worker lane.
  while (job_next_ < job_n_) {
    const size_t index = job_next_++;
    lock.unlock();
    t_in_parallel_region = true;
    fn(ctx, index);
    t_in_parallel_region = false;
    lock.lock();
    --job_pending_;
  }
  done_cv_.wait(lock, [this] { return job_pending_ == 0; });
  job_active_ = false;
  job_fn_ = nullptr;
  job_ctx_ = nullptr;
  job_n_ = 0;
  job_next_ = 0;
  done_cv_.notify_all();
}

}  // namespace cep
