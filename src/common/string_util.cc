#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace cep {

std::vector<std::string> SplitString(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delim) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return Status::ParseError("empty integer literal");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::OutOfRange("integer overflow: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid integer: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return Status::ParseError("empty numeric literal");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid number: '" + buf + "'");
  }
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string JoinStrings(const std::vector<std::string>& items,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace cep
