#include "common/hash.h"

namespace cep {

uint64_t HashBytes(const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

}  // namespace cep
