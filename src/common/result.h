#ifndef CEPSHED_COMMON_RESULT_H_
#define CEPSHED_COMMON_RESULT_H_

#include <cassert>
#include <type_traits>
#include <utility>
#include <variant>

#include "common/status.h"

namespace cep {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Analogous to arrow::Result. Accessing the value of an errored Result is a
/// programming error and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit construction from anything convertible to T (e.g. a
  /// unique_ptr<Derived> for Result<unique_ptr<Base>>).
  template <typename U,
            typename = std::enable_if_t<
                std::is_convertible_v<U&&, T> &&
                !std::is_same_v<std::decay_t<U>, Result<T>> &&
                !std::is_same_v<std::decay_t<U>, Status>>>
  Result(U&& value) : repr_(T(std::forward<U>(value))) {}  // NOLINT
  /// Implicit construction from a non-OK status (the common error path).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() && "Result constructed from OK Status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  /// Moves the value out; the Result must be ok().
  T MoveValueUnsafe() { return std::move(std::get<T>(repr_)); }

  /// Returns the value, or `alternative` when this Result holds an error.
  T ValueOr(T alternative) const {
    return ok() ? std::get<T>(repr_) : std::move(alternative);
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace cep

#define CEP_CONCAT_IMPL_(x, y) x##y
#define CEP_CONCAT_(x, y) CEP_CONCAT_IMPL_(x, y)

/// Evaluates a Result<T> expression; on error, propagates its Status from the
/// current function; otherwise assigns the value to `lhs` (which may include
/// a declaration, e.g. `CEP_ASSIGN_OR_RETURN(auto q, ParseQuery(text));`).
#define CEP_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  CEP_ASSIGN_OR_RETURN_IMPL_(CEP_CONCAT_(_cep_result_, __LINE__), \
                             lhs, rexpr)

#define CEP_ASSIGN_OR_RETURN_IMPL_(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                               \
  if (!result_name.ok()) return result_name.status();       \
  lhs = result_name.MoveValueUnsafe()

#endif  // CEPSHED_COMMON_RESULT_H_
