#ifndef CEPSHED_NFA_DOT_H_
#define CEPSHED_NFA_DOT_H_

#include <string>

#include "nfa/nfa.h"

namespace cep {

/// \brief Renders the automaton in Graphviz dot format (documentation and
/// debugging aid; `dot -Tsvg` produces the diagrams used in README.md).
std::string NfaToDot(const Nfa& nfa);

}  // namespace cep

#endif  // CEPSHED_NFA_DOT_H_
