#ifndef CEPSHED_NFA_COMPILER_H_
#define CEPSHED_NFA_COMPILER_H_

#include <memory>

#include "common/result.h"
#include "nfa/nfa.h"

namespace cep {

/// \brief Compiles an analyzed query into its evaluation automaton.
///
/// Construction scheme (SASE+ NFA^b):
///  * each positive single variable gets an *awaiting* state whose take edge
///    binds the event and advances;
///  * each Kleene variable gets an awaiting state (begin edge) plus an
///    *in-Kleene* state with a kleene-take self-loop; the entry edges of the
///    following variable are replicated onto the in-Kleene state, gated by
///    the Kleene variable's exit predicates (COUNT / [last] checks) — this is
///    the "proceed" structure;
///  * negated variables become kill edges on the state covering the interval
///    in which they are forbidden;
///  * the accept state is either a dedicated final state or, for a trailing
///    Kleene variable, its in-Kleene state marked final (a match is emitted
///    on every take that satisfies the final predicates while the run stays
///    alive for further extensions).
Result<std::shared_ptr<const Nfa>> CompileToNfa(AnalyzedQuery analyzed);

}  // namespace cep

#endif  // CEPSHED_NFA_COMPILER_H_
