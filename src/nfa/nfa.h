#ifndef CEPSHED_NFA_NFA_H_
#define CEPSHED_NFA_NFA_H_

#include <memory>
#include <string>
#include <vector>

#include "query/analyzer.h"

namespace cep {

/// How an NFA edge reacts to a matching event.
enum class EdgeKind : uint8_t {
  kTake,        ///< bind the event and move to `target`
  kKleeneTake,  ///< bind another Kleene element; self-loop
  kKill,        ///< negation watch: a matching event kills the run
};

const char* EdgeKindName(EdgeKind kind);

/// \brief One transition of the evaluation automaton.
///
/// Predicates are raw pointers into the owning Nfa's AnalyzedQuery. During
/// evaluation the candidate event is virtually bound to `var_index` (see
/// BindingView); the edge fires only if all `exit_predicates` (final checks
/// of the Kleene variable the run is leaving, if any) and all `predicates`
/// hold.
struct Edge {
  EdgeKind kind = EdgeKind::kTake;
  EventTypeId event_type = kInvalidEventType;
  int var_index = -1;   ///< pattern variable bound (or negated var for kKill)
  int exit_var = -1;    ///< Kleene variable being exited via this edge, or -1
  std::vector<const Expr*> predicates;
  std::vector<const Expr*> exit_predicates;
  int target = -1;      ///< target state id (-1 for kKill)
  /// Optimizer annotation (src/opt/): shared-predicate-table id for each
  /// entry of `predicates`, or -1 where the predicate is not interned.
  /// Empty (the compiler's output) means no predicate is interned; only the
  /// CSE pass populates it, and the engine consults it when a shared-verdict
  /// row is installed for the current event.
  std::vector<int32_t> shared_pred_ids;
};

/// \brief One state of the automaton.
///
/// `var_index` is the pattern variable a run in this state is collecting:
/// the awaited variable for plain states, the actively-extended variable for
/// in-Kleene states, or -1 for the terminal accept state.
struct State {
  int id = -1;
  int var_index = -1;
  bool in_kleene = false;
  bool is_final = false;
  /// Trailing negation: a run reaching this final state must not emit until
  /// its window closes (the engine emits on expiry or Flush); kill edges on
  /// the state can still void it.
  bool deferred_final = false;
  /// Checked when a match is emitted from this state (final COUNT checks of
  /// a trailing Kleene variable). Empty for plain final states.
  std::vector<const Expr*> final_predicates;
  std::vector<Edge> edges;
};

/// \brief Compiled evaluation automaton for one query (SASE+ NFA^b shape:
/// a state chain with begin/take/proceed structure, negation as kill edges,
/// and predicates attached to the earliest edge that can evaluate them).
///
/// The Nfa holds a shared reference to the AnalyzedQuery whose expressions
/// its edges point into: optimizer passes (src/opt/) build rewritten Nfa
/// instances — fewer states, annotated edges — over the *same* analyzed
/// query, so predicate pointers stay valid across rewrites.
class Nfa {
 public:
  Nfa(AnalyzedQuery analyzed, std::vector<State> states)
      : Nfa(std::make_shared<const AnalyzedQuery>(std::move(analyzed)),
            std::move(states)) {}

  Nfa(std::shared_ptr<const AnalyzedQuery> analyzed, std::vector<State> states)
      : analyzed_(std::move(analyzed)), states_(std::move(states)) {}

  Nfa(const Nfa&) = delete;
  Nfa& operator=(const Nfa&) = delete;

  const AnalyzedQuery& analyzed() const { return *analyzed_; }
  /// The shared analyzed query (optimizer rewrites alias it).
  const std::shared_ptr<const AnalyzedQuery>& analyzed_ptr() const {
    return analyzed_;
  }
  const ParsedQuery& query() const { return analyzed_->query; }
  Duration window() const { return analyzed_->query.window; }

  const std::vector<State>& states() const { return states_; }
  const State& state(int id) const { return states_[id]; }
  int start_state() const { return 0; }
  size_t num_states() const { return states_.size(); }

  /// Structural summary for tests and logs.
  std::string ToString() const;

 private:
  std::shared_ptr<const AnalyzedQuery> analyzed_;
  std::vector<State> states_;
};

using NfaPtr = std::shared_ptr<const Nfa>;

}  // namespace cep

#endif  // CEPSHED_NFA_NFA_H_
