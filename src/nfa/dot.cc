#include "nfa/dot.h"

#include "common/string_util.h"

namespace cep {

namespace {

std::string EscapeLabel(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string NfaToDot(const Nfa& nfa) {
  std::string out = "digraph nfa {\n  rankdir=LR;\n  node [shape=circle];\n";
  for (const auto& state : nfa.states()) {
    std::string label = StrFormat("S%d", state.id);
    if (state.var_index >= 0) {
      label += "\\n" + nfa.query().pattern[state.var_index].name;
      if (state.in_kleene) label += "+";
    }
    out += StrFormat("  s%d [label=\"%s\"%s];\n", state.id,
                     EscapeLabel(label).c_str(),
                     state.is_final ? ", shape=doublecircle" : "");
  }
  for (const auto& state : nfa.states()) {
    for (const auto& edge : state.edges) {
      const auto& var = nfa.query().pattern[edge.var_index];
      std::string label =
          StrFormat("%s %s", EdgeKindName(edge.kind), var.event_type.c_str());
      std::vector<std::string> preds;
      for (const auto* p : edge.exit_predicates) preds.push_back(p->ToString());
      for (const auto* p : edge.predicates) preds.push_back(p->ToString());
      if (!preds.empty()) label += "\\n" + JoinStrings(preds, " && ");
      if (edge.kind == EdgeKind::kKill) {
        out += StrFormat("  s%d -> kill%d [label=\"%s\", style=dashed];\n",
                         state.id, state.id, EscapeLabel(label).c_str());
        out += StrFormat("  kill%d [label=\"X\", shape=plaintext];\n",
                         state.id);
      } else {
        out += StrFormat("  s%d -> s%d [label=\"%s\"];\n", state.id,
                         edge.target, EscapeLabel(label).c_str());
      }
    }
  }
  out += "}\n";
  return out;
}

}  // namespace cep
