#include "nfa/nfa.h"

#include "common/string_util.h"

namespace cep {

const char* EdgeKindName(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kTake:
      return "take";
    case EdgeKind::kKleeneTake:
      return "kleene-take";
    case EdgeKind::kKill:
      return "kill";
  }
  return "?";
}

std::string Nfa::ToString() const {
  std::string out = StrFormat("NFA '%s' (%zu states)\n",
                              analyzed_->query.name.c_str(), states_.size());
  for (const auto& state : states_) {
    out += StrFormat("  S%d", state.id);
    if (state.var_index >= 0) {
      out += StrFormat(" [%s%s]",
                       analyzed_->query.pattern[state.var_index].name.c_str(),
                       state.in_kleene ? "*" : "");
    }
    if (state.is_final) out += " [final]";
    out += "\n";
    for (const auto& edge : state.edges) {
      const auto& var = analyzed_->query.pattern[edge.var_index];
      out += StrFormat("    %s %s(%s)", EdgeKindName(edge.kind),
                       var.event_type.c_str(), var.name.c_str());
      if (edge.exit_var >= 0) {
        out += StrFormat(" exiting %s",
                         analyzed_->query.pattern[edge.exit_var].name.c_str());
      }
      if (!edge.predicates.empty() || !edge.exit_predicates.empty()) {
        std::vector<std::string> parts;
        for (const auto* p : edge.exit_predicates) parts.push_back(p->ToString());
        for (const auto* p : edge.predicates) parts.push_back(p->ToString());
        out += " if " + JoinStrings(parts, " && ");
      }
      if (edge.target >= 0) out += StrFormat(" -> S%d", edge.target);
      out += "\n";
    }
  }
  return out;
}

}  // namespace cep
