#include "nfa/compiler.h"

#include <utility>

namespace cep {

namespace {

/// Builds the state chain. Pattern indices are used throughout; `positives`
/// maps chain position -> pattern index.
class NfaBuilder {
 public:
  explicit NfaBuilder(const AnalyzedQuery& analyzed) : analyzed_(analyzed) {}

  Result<std::vector<State>> Build() {
    CollectStructure();
    AllocateStates();
    BuildStates();
    return std::move(states_);
  }

 private:
  void CollectStructure() {
    const auto& pattern = analyzed_.query.pattern;
    negs_before_.resize(pattern.size() + 1);
    for (size_t i = 0; i < pattern.size(); ++i) {
      if (pattern[i].kind == VariableKind::kNegated) {
        // Forbidden in the interval before the next positive variable.
        negs_pending_.push_back(static_cast<int>(i));
      } else {
        positives_.push_back(static_cast<int>(i));
        negs_before_[positives_.size() - 1] = std::move(negs_pending_);
        negs_pending_.clear();
      }
    }
  }

  void AllocateStates() {
    const auto& pattern = analyzed_.query.pattern;
    const size_t m = positives_.size();
    entry_state_.assign(m, -1);
    kleene_state_.assign(m, -1);
    int next_id = 0;
    for (size_t k = 0; k < m; ++k) {
      // The awaiting state is only reachable when the preceding positive
      // variable is single (or this is the first variable); after a Kleene
      // variable, entry edges live on the in-Kleene state instead.
      const bool reachable =
          k == 0 ||
          pattern[positives_[k - 1]].kind != VariableKind::kKleene;
      if (reachable) entry_state_[k] = next_id++;
      if (pattern[positives_[k]].kind == VariableKind::kKleene) {
        kleene_state_[k] = next_id++;
      }
    }
    const bool last_is_kleene =
        pattern[positives_.back()].kind == VariableKind::kKleene;
    final_state_ = last_is_kleene ? kleene_state_.back() : next_id++;
    states_.resize(static_cast<size_t>(next_id));
    for (int i = 0; i < next_id; ++i) states_[i].id = i;
  }

  /// Target reached after variable at chain position k is fully bound.
  int ExitTarget(size_t k) const {
    if (k + 1 >= positives_.size()) return final_state_;
    const auto& next = analyzed_.query.pattern[positives_[k + 1]];
    if (next.kind == VariableKind::kKleene && entry_state_[k + 1] < 0) {
      // Unreachable case by construction (entry always exists after single).
      return kleene_state_[k + 1];
    }
    return entry_state_[k + 1];
  }

  /// Edges that bind the first event of the variable at chain position k.
  std::vector<Edge> EntryEdges(size_t k) const {
    const int var = positives_[k];
    const auto& pv = analyzed_.query.pattern[var];
    Edge edge;
    edge.kind = EdgeKind::kTake;
    edge.event_type = pv.type_id;
    edge.var_index = var;
    edge.predicates = analyzed_.attachments[var].take;
    edge.target = pv.kind == VariableKind::kKleene
                      ? kleene_state_[k]
                      : ExitTarget(k);
    return {std::move(edge)};
  }

  std::vector<Edge> KillEdges(const std::vector<int>& negated_vars) const {
    std::vector<Edge> edges;
    edges.reserve(negated_vars.size());
    for (const int var : negated_vars) {
      Edge edge;
      edge.kind = EdgeKind::kKill;
      edge.event_type = analyzed_.query.pattern[var].type_id;
      edge.var_index = var;
      edge.predicates = analyzed_.attachments[var].take;
      edge.target = -1;
      edges.push_back(std::move(edge));
    }
    return edges;
  }

  void BuildStates() {
    const auto& pattern = analyzed_.query.pattern;
    const size_t m = positives_.size();
    for (size_t k = 0; k < m; ++k) {
      const int var = positives_[k];
      const auto& pv = pattern[var];
      if (entry_state_[k] >= 0) {
        State& s = states_[entry_state_[k]];
        s.var_index = var;
        // Kill edges first: an event that both violates a negation and could
        // advance the run must kill it.
        s.edges = KillEdges(negs_before_[k]);
        for (auto& e : EntryEdges(k)) s.edges.push_back(std::move(e));
      }
      if (pv.kind == VariableKind::kKleene) {
        State& s = states_[kleene_state_[k]];
        s.var_index = var;
        s.in_kleene = true;
        Edge loop;
        loop.kind = EdgeKind::kKleeneTake;
        loop.event_type = pv.type_id;
        loop.var_index = var;
        loop.predicates = analyzed_.attachments[var].take;
        loop.target = s.id;
        s.edges.push_back(std::move(loop));
        if (k + 1 < m) {
          // Proceed structure: the next variable's entry edges, gated by this
          // Kleene variable's exit predicates.
          for (Edge e : EntryEdges(k + 1)) {
            e.exit_var = var;
            e.exit_predicates = analyzed_.attachments[var].exit;
            s.edges.push_back(std::move(e));
          }
        } else {
          s.is_final = true;
          s.final_predicates = analyzed_.attachments[var].exit;
        }
      }
    }
    if (pattern[positives_.back()].kind != VariableKind::kKleene) {
      states_[final_state_].is_final = true;
    }
    if (!negs_pending_.empty()) {
      // Trailing negation: the forbidden interval extends from the last
      // positive event to the window close, so the final state watches for
      // violations and emission is deferred (analyzer guarantees the last
      // positive variable is single, so the final state is dedicated).
      State& final_state = states_[final_state_];
      final_state.deferred_final = true;
      for (auto& edge : KillEdges(negs_pending_)) {
        final_state.edges.push_back(std::move(edge));
      }
    }
  }

  const AnalyzedQuery& analyzed_;
  std::vector<int> positives_;                 // chain position -> pattern idx
  std::vector<std::vector<int>> negs_before_;  // chain position -> negated vars
  std::vector<int> negs_pending_;
  std::vector<int> entry_state_;
  std::vector<int> kleene_state_;
  int final_state_ = -1;
  std::vector<State> states_;
};

}  // namespace

Result<std::shared_ptr<const Nfa>> CompileToNfa(AnalyzedQuery analyzed) {
  NfaBuilder builder(analyzed);
  CEP_ASSIGN_OR_RETURN(std::vector<State> states, builder.Build());
  return std::make_shared<const Nfa>(std::move(analyzed), std::move(states));
}

}  // namespace cep
