// Cluster monitoring under overload: the paper's evaluation scenario as an
// application. Generates a bursty Google-style cluster trace, runs the
// placement-churn query Q1 with state-based load shedding enabled, and
// reports accuracy against exhaustive processing.
//
//   $ ./build/examples/cluster_monitoring

#include <cstdio>

#include "harness/accuracy.h"
#include "harness/experiment.h"
#include "shedding/state_shedder.h"
#include "workload/google_trace.h"
#include "workload/queries.h"

using namespace cep;  // examples only

int main() {
  // 1. Synthesize a day of cluster events with two load bursts.
  SchemaRegistry registry;
  if (const Status st = GoogleTraceGenerator::RegisterSchemas(&registry);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  GoogleTraceOptions trace;
  trace.duration = 12 * kHour;
  trace.jobs_per_hour = 150;
  trace.burst_multiplier = 8.0;
  trace.burst_period = 5 * kHour;
  trace.burst_duration = 30 * kMinute;
  GoogleTraceGenerator generator(trace);
  auto events = generator.Generate(registry);
  if (!events.ok()) {
    std::fprintf(stderr, "%s\n", events.status().ToString().c_str());
    return 1;
  }
  std::printf("trace: %zu task lifecycle events over 12 hours\n",
              events.ValueOrDie().size());

  // 2. The monitoring query: SUBMIT -> SCHEDULE -> EVICT of the same task
  //    within 3 hours (placement churn).
  auto q1 = MakeClusterQ1(registry, 3 * kHour);
  if (!q1.ok()) {
    std::fprintf(stderr, "%s\n", q1.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n\n", q1.ValueOrDie().text.c_str());

  // 3. Exhaustive (golden) run — feasible offline, not at peak load.
  auto golden = RunOnce(events.ValueOrDie(), q1.ValueOrDie().nfa,
                        EngineOptions{}, nullptr);
  if (!golden.ok()) {
    std::fprintf(stderr, "%s\n", golden.status().ToString().c_str());
    return 1;
  }
  std::printf("exhaustive: %zu churn incidents, peak |R(t)| = %llu\n",
              golden.ValueOrDie().matches.size(),
              static_cast<unsigned long long>(
                  golden.ValueOrDie().metrics.peak_runs));

  // 4. Best-effort run with SBLS: overload detected via the deterministic
  //    virtual-cost latency proxy; 20% of partial matches shed per episode,
  //    ranked by the learned contribution and cost models.
  EngineOptions options;
  options.latency_mode = LatencyMode::kVirtualCost;
  options.virtual_ns_per_op = 100.0;
  options.latency_threshold_micros = 80.0;
  options.shed_amount.fraction = 0.20;

  StateShedderOptions sbls;
  sbls.pm_hash = q1.ValueOrDie().pm_hash;
  sbls.time_slices = 16;
  sbls.scoring.weight_contribution = 4.0;
  sbls.scoring.weight_cost = 1.0;

  auto lossy = RunOnce(events.ValueOrDie(), q1.ValueOrDie().nfa, options,
                       std::make_unique<StateShedder>(sbls, &registry));
  if (!lossy.ok()) {
    std::fprintf(stderr, "%s\n", lossy.status().ToString().c_str());
    return 1;
  }
  const RunOutcome& outcome = lossy.ValueOrDie();
  const AccuracyReport report =
      CompareMatches(golden.ValueOrDie().matches, outcome.matches);
  std::printf(
      "with SBLS:  %zu churn incidents detected\n"
      "            %llu overload episodes, %llu partial matches shed\n"
      "            peak |R(t)| = %llu (vs %llu exhaustive)\n"
      "            accuracy (recall of exhaustive matches): %.2f%%\n"
      "            false positives: %zu (must be 0)\n",
      outcome.matches.size(),
      static_cast<unsigned long long>(outcome.metrics.shed_triggers),
      static_cast<unsigned long long>(outcome.metrics.runs_shed),
      static_cast<unsigned long long>(outcome.metrics.peak_runs),
      static_cast<unsigned long long>(golden.ValueOrDie().metrics.peak_runs),
      report.recall() * 100.0, report.false_positives());

  // 5. A few sample complex events.
  std::printf("\nsample warnings:\n");
  for (size_t i = 0; i < outcome.matches.size() && i < 3; ++i) {
    std::printf("  %s\n",
                outcome.matches[i].complex_event->ToString().c_str());
  }
  return report.false_positives() == 0 ? 0 : 1;
}
