// Example 1 of the paper, end to end: detecting bikes parked in obscure
// places in a free-floating bike-sharing system. A user requests a bike,
// several bikes are reported available within distance lambda, yet the user
// unlocks a bike further than lambda away — if this happens often in an
// area, the operator should inspect it.
//
//   $ ./build/examples/bike_sharing

#include <cstdio>
#include <map>

#include "engine/engine.h"
#include "workload/bikeshare.h"
#include "workload/queries.h"

using namespace cep;  // examples only

int main() {
  SchemaRegistry registry;
  if (const Status st = BikeShareGenerator::RegisterSchemas(&registry);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // Zones 0..199 on a line; the low-index fifth are "obscure" — bikes parked
  // there are hard to find, so users walk away and unlock elsewhere.
  BikeShareOptions trace;
  trace.duration = 6 * kHour;
  trace.num_zones = 200;
  trace.obscure_zone_share = 0.2;
  trace.requests_per_minute = 2.0;
  BikeShareGenerator generator(trace);
  auto events = generator.Generate(registry);
  if (!events.ok()) {
    std::fprintf(stderr, "%s\n", events.status().ToString().c_str());
    return 1;
  }

  // The paper's query (Example 1), with COUNT > 1 and a 5-minute window
  // suited to the synthetic city's pace:
  //   PATTERN SEQ(req a, avail+ b[], unlock c)
  //   WHERE diff(b[i].loc, a.loc) < lambda, COUNT(b[]) > 1,
  //         diff(c.loc, a.loc) > lambda, c.uid = a.uid
  //   WITHIN 5 min RETURN warning(...)
  auto query = MakeBikeQuery(registry, 5 * kMinute, trace.lambda,
                             /*min_avail_count=*/1);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n\n", query.ValueOrDie().text.c_str());

  // Count warnings per zone as they are emitted.
  std::map<int64_t, int> warnings_per_zone;
  Engine engine(query.ValueOrDie().nfa, EngineOptions{});
  engine.SetMatchCallback([&](const Match& match) {
    const int64_t zone =
        match.complex_event->attribute("loc").int_value();
    ++warnings_per_zone[zone];
  });
  for (const auto& event : events.ValueOrDie()) {
    if (const Status st = engine.ProcessEvent(event); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  std::printf("processed %zu events, %llu warnings emitted\n\n",
              events.ValueOrDie().size(),
              static_cast<unsigned long long>(
                  engine.metrics().matches_emitted));

  // Aggregate per zone class: obscure zones should dominate.
  int obscure_warnings = 0, normal_warnings = 0;
  for (const auto& [zone, count] : warnings_per_zone) {
    if (BikeShareGenerator::IsObscureZone(trace, static_cast<int>(zone))) {
      obscure_warnings += count;
    } else {
      normal_warnings += count;
    }
  }
  std::printf("warnings in obscure zones (%d of %d zones): %d\n",
              static_cast<int>(trace.obscure_zone_share * trace.num_zones),
              trace.num_zones, obscure_warnings);
  std::printf("warnings in normal zones: %d\n", normal_warnings);
  std::printf("\ntop zones to inspect:\n");
  std::vector<std::pair<int, int64_t>> ranked;
  for (const auto& [zone, count] : warnings_per_zone) {
    ranked.emplace_back(count, zone);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (size_t i = 0; i < ranked.size() && i < 5; ++i) {
    std::printf("  zone %lld: %d warnings%s\n",
                static_cast<long long>(ranked[i].second), ranked[i].first,
                BikeShareGenerator::IsObscureZone(
                    trace, static_cast<int>(ranked[i].second))
                    ? "  (obscure)"
                    : "");
  }
  return 0;
}
