// Quickstart: parse a SASE query, compile it, feed a handful of events, and
// print the matches — the minimal end-to-end use of the public API.
//
//   $ ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "engine/engine.h"
#include "nfa/compiler.h"
#include "nfa/dot.h"
#include "query/analyzer.h"
#include "query/parser.h"

using namespace cep;  // examples only; library code never does this

namespace {

/// Builds one event directly against a registered schema.
EventPtr MakeEvent(const SchemaRegistry& registry, const char* type,
                   Timestamp ts, std::vector<Value> values, uint64_t seq) {
  const EventTypeId id = registry.FindType(type);
  return std::make_shared<Event>(id, registry.schema(id), ts,
                                 std::move(values), seq);
}

}  // namespace

int main() {
  // 1. Declare the event schema: temperature and smoke sensor readings.
  SchemaRegistry registry;
  auto temp_type = registry.Register(
      "temp", {{"sensor", ValueType::kInt}, {"celsius", ValueType::kDouble}});
  auto smoke_type = registry.Register(
      "smoke", {{"sensor", ValueType::kInt}, {"density", ValueType::kDouble}});
  if (!temp_type.ok() || !smoke_type.ok()) {
    std::fprintf(stderr, "schema registration failed\n");
    return 1;
  }

  // 2. Write the query in SASE: a temperature spike followed by smoke on the
  //    same sensor within two minutes — a fire warning.
  const char* query_text =
      "PATTERN SEQ(temp t, smoke s) "
      "WHERE t.celsius > 60, s.sensor = t.sensor, s.density > 0.5 "
      "WITHIN 2 min "
      "RETURN fire(sensor = t.sensor, heat = t.celsius, smoke = s.density)";

  // 3. Parse -> analyze (bind names, attach predicates) -> compile to NFA.
  auto parsed = ParseQuery(query_text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  auto analyzed = Analyze(parsed.MoveValueUnsafe(), registry);
  if (!analyzed.ok()) {
    std::fprintf(stderr, "analyze: %s\n",
                 analyzed.status().ToString().c_str());
    return 1;
  }
  auto nfa = CompileToNfa(analyzed.MoveValueUnsafe());
  if (!nfa.ok()) {
    std::fprintf(stderr, "compile: %s\n", nfa.status().ToString().c_str());
    return 1;
  }
  std::printf("Compiled automaton:\n%s\n",
              nfa.ValueOrDie()->ToString().c_str());

  // 4. Run the engine over a stream. Matches arrive via callback.
  Engine engine(nfa.ValueOrDie(), EngineOptions{});
  engine.SetMatchCallback([&](const Match& match) {
    std::printf("MATCH %s -> %s\n",
                match.ToString(engine.nfa().query()).c_str(),
                match.complex_event->ToString().c_str());
  });

  const std::vector<EventPtr> stream = {
      MakeEvent(registry, "temp", 0 * kSecond, {Value(1), Value(25.0)}, 1),
      MakeEvent(registry, "temp", 10 * kSecond, {Value(2), Value(72.5)}, 2),
      MakeEvent(registry, "smoke", 30 * kSecond, {Value(1), Value(0.9)}, 3),
      MakeEvent(registry, "smoke", 40 * kSecond, {Value(2), Value(0.8)}, 4),
      MakeEvent(registry, "temp", 60 * kSecond, {Value(3), Value(95.0)}, 5),
      MakeEvent(registry, "smoke", 61 * kSecond, {Value(3), Value(0.2)}, 6),
  };
  for (const auto& event : stream) {
    std::printf("event: %s\n", event->ToString().c_str());
    const Status status = engine.ProcessEvent(event);
    if (!status.ok()) {
      std::fprintf(stderr, "engine: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  std::printf("\n%llu matches, %llu partial matches still active\n",
              static_cast<unsigned long long>(engine.metrics().matches_emitted),
              static_cast<unsigned long long>(engine.num_runs()));
  std::printf("(expected: exactly one match, on sensor 2)\n");
  return 0;
}
