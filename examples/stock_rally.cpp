// Finance example (the paper's introduction motivates CEP with stock market
// monitoring): detect price rallies — monotonically rising tick runs of a
// minimum length — with a trailing Kleene pattern, and show state-based
// shedding keeping the engine responsive when the tick rate spikes.
//
//   $ ./build/examples/stock_rally

#include <cstdio>
#include <map>

#include "engine/engine.h"
#include "harness/accuracy.h"
#include "harness/experiment.h"
#include "shedding/state_shedder.h"
#include "workload/queries.h"
#include "workload/stock.h"

using namespace cep;  // examples only

int main() {
  SchemaRegistry registry;
  if (const Status st = StockGenerator::RegisterSchemas(&registry); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  StockOptions trace;
  trace.duration = 3 * kMinute;
  trace.num_symbols = 20;
  trace.trendy_share = 0.3;  // symbols 0..5 drift upward
  trace.ticks_per_second = 12.0;
  StockGenerator generator(trace);
  auto events = generator.Generate(registry);
  if (!events.ok()) {
    std::fprintf(stderr, "%s\n", events.status().ToString().c_str());
    return 1;
  }

  // Rising-run query: a tick followed by 3+ strictly increasing ticks of the
  // same symbol within 10 seconds. Windows must stay short here: under
  // skip-till-any-match every increasing subsequence is a distinct partial
  // match, so the state grows exponentially with ticks-per-window — which is
  // precisely the overload SBLS is for.
  auto query = MakeStockRisingQuery(registry, 10 * kSecond,
                                    /*min_run_length=*/3);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n", query.ValueOrDie().text.c_str());
  std::printf("stream: %zu ticks over 3 minutes\n\n",
              events.ValueOrDie().size());

  // Exhaustive run.
  auto golden =
      RunOnce(events.ValueOrDie(), query.ValueOrDie().nfa, EngineOptions{},
              nullptr);
  if (!golden.ok()) {
    std::fprintf(stderr, "%s\n", golden.status().ToString().c_str());
    return 1;
  }

  // Best-effort run with a hard partial-match budget (a memory-constrained
  // deployment) and SBLS ranking.
  EngineOptions options;
  options.max_runs = 2000;
  options.shed_amount.fraction = 0.25;
  StateShedderOptions sbls;
  sbls.pm_hash = query.ValueOrDie().pm_hash;  // hash on the symbol
  sbls.scoring.weight_contribution = 4.0;
  auto lossy = RunOnce(events.ValueOrDie(), query.ValueOrDie().nfa, options,
                       std::make_unique<StateShedder>(sbls, &registry));
  if (!lossy.ok()) {
    std::fprintf(stderr, "%s\n", lossy.status().ToString().c_str());
    return 1;
  }
  const AccuracyReport report =
      CompareMatches(golden.ValueOrDie().matches, lossy.ValueOrDie().matches);

  std::printf("exhaustive: %zu rallies, peak |R(t)| = %llu\n",
              golden.ValueOrDie().matches.size(),
              static_cast<unsigned long long>(
                  golden.ValueOrDie().metrics.peak_runs));
  std::printf("with 2000-run budget + SBLS: %zu rallies (%.2f%% recall), "
              "peak |R(t)| = %llu\n\n",
              lossy.ValueOrDie().matches.size(), report.recall() * 100.0,
              static_cast<unsigned long long>(
                  lossy.ValueOrDie().metrics.peak_runs));

  // Rallies per symbol: trendy symbols should dominate.
  std::map<int64_t, int> rallies;
  for (const auto& match : lossy.ValueOrDie().matches) {
    ++rallies[match.complex_event->attribute("symbol").int_value()];
  }
  std::printf("rallies per symbol (trendy symbols are 0..%d):\n",
              static_cast<int>(trace.trendy_share * trace.num_symbols) - 1);
  for (const auto& [symbol, count] : rallies) {
    std::printf("  symbol %2lld: %3d %s\n", static_cast<long long>(symbol),
                count,
                StockGenerator::IsTrendy(trace, static_cast<int>(symbol))
                    ? "(trendy)"
                    : "");
  }
  return 0;
}
